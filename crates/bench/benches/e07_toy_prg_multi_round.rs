//! E7 — Theorem 5.3, Lemma 6.1 and Claims 4/5: the toy PRG fools
//! multiple rounds.
//!
//! Part 1: exact mixture distance for `j`-round adaptive protocols
//! against the `2jn/2^{k/9}` bound.
//!
//! Part 2: Lemma 6.1 on restricted domains
//! (`E_b ‖f(U_{[b],D}) − f(U_{k+1,D})‖ ≤ 2^{-k/9}` for `|D| ≥ 2^{k/2}`).
//!
//! Part 3: Claim 5 — the coset balance `N_b/N_D ≈ ½`.

use bcc_bench::{banner, check, f, print_table, sci};
use bcc_congest::FnProtocol;
use bcc_core::{Estimator, ExactEstimator};
use bcc_planted::bounds;
use bcc_prg::toy::{claim_5_deviations, family, lemma_6_1_mean, uniform_input};
use bcc_stats::TruthTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    banner(
        "E7: toy PRG, multiple rounds",
        "Theorem 5.3, Lemma 6.1, Claims 4/5",
        "exact distance <= O(jn/2^(k/9)) for j <= k/10; restricted-domain lemma; coset balance",
    );
    let mut rng = StdRng::seed_from_u64(bcc_bench::SEED);

    println!("\n-- Theorem 5.3: exact mixture distance, j rounds --");
    let mut rows = Vec::new();
    for &(n, k) in &[(2usize, 8u32), (3, 8), (2, 10)] {
        for j in 1..=3u32 {
            // Non-linear protocol (a masked threshold): linear tests are
            // fooled perfectly by a linear PRG, so thresholds make the
            // table informative.
            let proto = FnProtocol::new(n, k + 1, j * n as u32, move |proc, input, tr| {
                // Always include the PRG's extra bit (bit k) in the mask —
                // a test that ignores it sees only raw uniform seed bits.
                let mask = ((0x3C96A5 ^ tr.as_u64() ^ ((proc as u64) << 3)) & ((1 << (k + 1)) - 1))
                    | (1 << k);
                (input & mask).count_ones() >= (k + 1) / 3
            });
            let members = family(n, k);
            let baseline = uniform_input(n, k);
            let cmp = ExactEstimator::default().estimate_full(&proto, &members, &baseline);
            let bound = bounds::theorem_5_3(n, k, j as usize);
            rows.push(vec![
                n.to_string(),
                k.to_string(),
                j.to_string(),
                sci(cmp.tv()),
                sci(cmp.progress()),
                sci(bound),
                check(cmp.tv() <= bound),
            ]);
        }
    }
    print_table(
        &[
            "n",
            "k",
            "j",
            "mixture TV",
            "L_progress",
            "2jn/2^(k/9)",
            "ok",
        ],
        &rows,
    );

    println!("\n-- Lemma 6.1: restricted-domain indistinguishability --");
    let mut rows = Vec::new();
    for &k in &[8u32, 10] {
        let full: Vec<u64> = (0..(1u64 << (k + 1))).collect();
        // Random domain of half the cube (far above the 2^(k/2) floor).
        let domain: Vec<u64> = full.iter().copied().filter(|_| rng.gen::<bool>()).collect();
        for (label, f_table) in [
            ("majority", TruthTable::majority(k + 1)),
            ("random", TruthTable::random(&mut rng, k + 1)),
        ] {
            let got = lemma_6_1_mean(k, &f_table, &domain);
            let bound = 2f64.powf(-(k as f64) / 9.0);
            rows.push(vec![
                k.to_string(),
                label.into(),
                domain.len().to_string(),
                sci(got),
                sci(bound),
                check(got <= bound),
            ]);
        }
    }
    print_table(&["k", "f", "|D|", "E_b distance", "2^(-k/9)", "ok"], &rows);

    println!("\n-- Claim 5: coset balance N_b/N_D on random domains --");
    let mut rows = Vec::new();
    for &k in &[8u32, 10, 12] {
        let domain: Vec<u64> = (0..(1u64 << (k + 1)))
            .filter(|_| rng.gen::<f64>() < 0.3)
            .collect();
        let (mean_dev, max_dev) = claim_5_deviations(k, &domain);
        let threshold = 2f64.powf(-(k as f64) / 8.0);
        rows.push(vec![
            k.to_string(),
            domain.len().to_string(),
            sci(mean_dev),
            f(max_dev),
            sci(threshold),
            check(mean_dev <= threshold),
        ]);
    }
    print_table(
        &["k", "|D|", "E|N_b/N_D - 1/2|", "max dev", "2^(-k/8)", "ok"],
        &rows,
    );
}
