//! E10 — Theorem 1.5: the average-case time hierarchy.
//!
//! For each `k`, the table shows the measured round count of the exact
//! protocol for "top `k×k` block full rank?" (always exactly `k`), the
//! `k/20` budget the lower bound rules out, and the uniform-input
//! statistics (`Pr[F_k = 1] → Q₀`; the block-pseudo distribution has
//! `F_k ≡ 0`).

use bcc_bench::{banner, check, f, print_table};
use bcc_f2::rank_dist::full_rank_probability;
use bcc_prg::hierarchy::{hierarchy_point, sample_block_pseudo, top_block_full_rank};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "E10: average-case time hierarchy",
        "Theorem 1.5",
        "F_k solvable exactly in k rounds; k/20 rounds cannot reach 99% accuracy",
    );
    let mut rng = StdRng::seed_from_u64(bcc_bench::SEED);
    let n = 64usize;

    let mut rows = Vec::new();
    for &k in &[4usize, 8, 16, 32, 48, 64] {
        let point = hierarchy_point(&mut rng, n, k, 400);
        // Sanity: block pseudo is never F_k = 1.
        let pseudo_true = (0..100)
            .filter(|_| top_block_full_rank(&sample_block_pseudo(&mut rng, n, k), k))
            .count();
        rows.push(vec![
            k.to_string(),
            point.exact_rounds.to_string(),
            point.hard_budget.to_string(),
            f(point.uniform_true_rate),
            f(full_rank_probability(k)),
            pseudo_true.to_string(),
            check(point.exact_rounds == k && pseudo_true == 0),
        ]);
    }
    print_table(
        &[
            "k",
            "exact rounds",
            "hard budget k/20",
            "Pr[F_k]=1 meas",
            "theory",
            "pseudo F_k=1",
            "ok",
        ],
        &rows,
    );
    println!(
        "\nShape check: exact rounds = k (a 20x gap over the impossible\n\
         budget), uniform rate tracks prod(1 - 2^-i), pseudo rate is 0 —\n\
         the function that separates k rounds from k/20 rounds, for every\n\
         k, on the uniform distribution."
    );
}
