//! E3 — Lemma 1.10: fixing one random coordinate moves any Boolean
//! function's output distribution by `O(1/√n)` on average.
//!
//! Exact evaluation for the standard function families; majority is the
//! tight witness — its value times `√n` settles at a constant
//! (`√(2/π)·…`), while parity is identically 0 and the bound `2/√n`
//! dominates everything.

use bcc_bench::{banner, check, f, print_table};
use bcc_planted::bounds;
use bcc_planted::lemmas::lemma_1_10_mean;
use bcc_stats::boolfn::Family;

fn main() {
    banner(
        "E3: one-coordinate statistical inequality",
        "Lemma 1.10",
        "E_i ||f(U) - f(U^[i])|| <= O(1/sqrt(n)), exact over all i; majority is Theta(1/sqrt(n))",
    );
    let mut rows = Vec::new();
    for &n in &[5u32, 9, 13, 17, 21] {
        let bound = bounds::lemma_1_10(n as usize);
        for fam in Family::all(bcc_bench::SEED) {
            let table = fam.build(n);
            let got = lemma_1_10_mean(&table);
            rows.push(vec![
                n.to_string(),
                fam.label().into(),
                f(got),
                f(got * (n as f64).sqrt()),
                f(bound),
                check(got <= bound),
            ]);
        }
    }
    print_table(
        &["n", "f", "measured", "x sqrt(n)", "2/sqrt(n)", "ok"],
        &rows,
    );
    println!(
        "\nShape check: majority's 'x sqrt(n)' column is flat (tightness);\n\
         parity's is 0 (fixing one bit of a full parity reveals nothing)."
    );
}
