//! E5 — Lemmas 4.3/4.4 and Claim 2: the restricted-domain inequalities
//! and the size of the consistent input set during a real protocol.
//!
//! Part 1 evaluates Lemma 4.4 exactly on random domains of size `2^{n−t}`
//! (the `√(t/n)` shape). Part 2 runs the exact engine on a real protocol
//! and prints the distribution of the speaker's consistent-set fraction —
//! Claim 2 says `|D_p| ≥ 2^{n−j}/n³` except with probability `1/n²`.

use bcc_bench::{banner, check, f, print_table, sci};
use bcc_core::engine::exact_comparison;
use bcc_planted::lemmas::{lemma_4_3_sampled, lemma_4_4_mean, random_domain};
use bcc_planted::{bounds, rand_input};
use bcc_stats::boolfn::Family;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "E5: restricted-domain inequalities + consistent-set sizes",
        "Lemmas 4.3 and 4.4, Claim 2",
        "restriction to |D| = 2^(n-t) costs sqrt(t/n); consistent sets stay large w.h.p.",
    );
    let mut rng = StdRng::seed_from_u64(bcc_bench::SEED);

    // Part 1: Lemma 4.4 on random domains.
    println!("\n-- Lemma 4.4: E_i ||f(U_D) - f(U_D^[i])|| on random |D| = 2^(n-t) --");
    let n = 14u32;
    let mut rows = Vec::new();
    for &t in &[1u32, 2, 4, 6] {
        let domain = random_domain(n, t, &mut rng);
        let bound = bounds::lemma_4_4(n as usize, t as usize);
        for fam in [Family::Majority, Family::Random(bcc_bench::SEED)] {
            let table = fam.build(n);
            let got = lemma_4_4_mean(&table, &domain);
            rows.push(vec![
                n.to_string(),
                t.to_string(),
                fam.label().into(),
                f(got),
                f(got / ((t as f64 + 1.0) / n as f64).sqrt()),
                f(bound),
                check(got <= bound),
            ]);
        }
    }
    print_table(
        &["n", "t", "f", "measured", "/sqrt((t+1)/n)", "bound", "ok"],
        &rows,
    );

    // Part 2: Lemma 4.3 (clique version, sampled cliques).
    println!("\n-- Lemma 4.3: clique version on restricted domains --");
    let mut rows = Vec::new();
    for &t in &[2u32, 4] {
        let domain = random_domain(n, t, &mut rng);
        for &k in &[2usize, 3] {
            let table = Family::Majority.build(n);
            let got = lemma_4_3_sampled(&table, &domain, k, 800, &mut rng);
            let bound = 4.0 * k as f64 * ((t as f64) / (n as f64)).sqrt();
            rows.push(vec![
                t.to_string(),
                k.to_string(),
                f(got),
                f(bound),
                check(got <= bound),
            ]);
        }
    }
    print_table(&["t", "k", "measured", "O(k sqrt(t/n))", "ok"], &rows);

    // Part 3: Claim 2 via the engine's speaker statistics, for a protocol
    // that genuinely reveals input bits (each processor broadcasts a fresh
    // input bit every round, plus an adaptive transcript twist).
    println!("\n-- Claim 2: speaker consistent-set fraction under A_rand --");
    let n = 7u32;
    let j = 3u32;
    let proto = bcc_congest::FnProtocol::new(n as usize, n, j * n, move |proc, input, tr| {
        let round = tr.len() / n;
        // Reveal bit (proc + round + 1) mod n: skips the processor's own
        // diagonal bit, which A_rand fixes to 0 (broadcasting it would
        // reveal nothing).
        let bit = (proc as u32 + round + 1) % n;
        let twist = tr.as_u64().count_ones() as u64 & 1;
        ((input >> bit) ^ twist) & 1 == 1
    });
    let baseline = rand_input(n);
    let cmp = exact_comparison(&proto, &baseline, &baseline);
    let mut rows = Vec::new();
    for round in 0..j {
        // Processor 0's turn at the start of each round: it has spoken
        // `round` bits so far.
        let t = (round * n) as usize;
        let s = &cmp.speaker_stats[t];
        // Claim 2 threshold: fraction < 2^-j / n^3, i.e. below the first
        // threshold index >= j + 3·log2(n).
        let idx = (round as usize + (3.0 * (n as f64).log2()).ceil() as usize)
            .min(bcc_core::engine::FRACTION_THRESHOLDS - 1);
        rows.push(vec![
            round.to_string(),
            f(s.mean_fraction),
            sci(s.mass_below[idx.min(19)]),
            sci(1.0 / (n as f64 * n as f64)),
            check(s.mass_below[idx.min(19)] <= 1.0 / (n as f64 * n as f64) + 1e-9),
        ]);
    }
    print_table(
        &[
            "round",
            "E[|D_p|/2^n]",
            "Pr[< 2^-j/n^3]",
            "claim: 1/n^2",
            "ok",
        ],
        &rows,
    );
    println!(
        "\nShape check: after j spoken bits the expected fraction is about\n\
         2^-j, and the catastrophic-shrink probability is far below 1/n^2."
    );
}
