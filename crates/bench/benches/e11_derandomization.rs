//! E11 — Corollary 7.1: the efficient random-bit-saving transform.
//!
//! A sampling-based estimator runs with true tapes and with PRG tapes at
//! several seed sizes `k`; the table compares fresh random bits, rounds,
//! and estimate quality (mean absolute error over repetitions) — quality
//! must be unchanged while bits collapse from `Θ(n)` to `Θ(k)`.

use bcc_bench::{banner, f, print_table};
use bcc_congest::{Model, Network};
use bcc_f2::BitVec;
use bcc_prg::derand::{
    run_derandomized, run_with_true_randomness, RandomizedAlgorithm, SamplingWeightEstimator,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "E11: saving random bits",
        "Corollary 7.1",
        "j-round algorithm with n random bits/proc -> O(j)-round with O(k) bits/proc, same accuracy",
    );
    let mut rng = StdRng::seed_from_u64(bcc_bench::SEED);
    let n = 128usize;
    let input_bits = 64usize;
    let samples = 20usize;
    let trials = 30usize;

    let algo = SamplingWeightEstimator {
        inputs: (0..n)
            .map(|_| BitVec::random(&mut rng, input_bits))
            .collect(),
        samples,
    };
    let truth = algo.true_density();
    println!(
        "\ntarget density: {truth:.4}; tape = {} bits/processor",
        algo.tape_bits()
    );

    let mut rows = Vec::new();

    // True randomness baseline.
    let mut err = 0.0;
    let mut rounds = 0usize;
    let mut bits = 0usize;
    for _ in 0..trials {
        let mut net = Network::new(Model::bcast1(n));
        let (est, acct) = run_with_true_randomness(&algo, &mut net, &mut rng);
        err += (est - truth).abs();
        rounds = acct.rounds;
        bits = acct.random_bits_per_processor;
    }
    rows.push(vec![
        "true".into(),
        "-".into(),
        bits.to_string(),
        rounds.to_string(),
        f(err / trials as f64),
    ]);

    // PRG tapes at several seed sizes.
    for &k in &[12u32, 16, 24, 32] {
        let mut err = 0.0;
        let mut rounds = 0usize;
        let mut bits = 0usize;
        for _ in 0..trials {
            let mut net = Network::new(Model::bcast1(n));
            let (est, acct) = run_derandomized(&algo, &mut net, k, &mut rng);
            err += (est - truth).abs();
            rounds = acct.rounds;
            bits = acct.random_bits_per_processor;
        }
        rows.push(vec![
            "PRG".into(),
            k.to_string(),
            bits.to_string(),
            rounds.to_string(),
            f(err / trials as f64),
        ]);
    }
    print_table(
        &["tapes", "k", "fresh bits/proc", "rounds", "mean |err|"],
        &rows,
    );
    println!(
        "\nShape check: the error column is flat across rows (Theorem 5.4:\n\
         the algorithm cannot tell the tapes apart) while fresh bits drop\n\
         from the tape length to k + k(m-k)/n."
    );
}
