//! Criterion micro-benchmarks for the computational substrate: PRG
//! expansion, F₂ rank, the exact engine walk, and Bron–Kerbosch on the
//! Appendix B active subgraph.

use bcc_congest::FnProtocol;
use bcc_core::{exact_comparison, ProductInput};
use bcc_f2::{gauss, BitMatrix, BitVec};
use bcc_graphs::clique::max_clique;
use bcc_graphs::digraph::UGraph;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_prg_expand(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("prg_expand");
    for &(k, m) in &[(128usize, 1024usize), (256, 4096)] {
        let mat = BitMatrix::random(&mut rng, k, m - k);
        let seed = BitVec::random(&mut rng, k);
        group.bench_function(format!("k{k}_m{m}"), |b| {
            b.iter(|| mat.left_mul_vec(std::hint::black_box(&seed)))
        });
    }
    group.finish();
}

fn bench_rank(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("f2_rank");
    for &n in &[64usize, 256] {
        group.bench_function(format!("{n}x{n}"), |b| {
            b.iter_batched(
                || BitMatrix::random(&mut rng, n, n),
                |m| gauss::rank(std::hint::black_box(&m)),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_engine_walk(c: &mut Criterion) {
    let proto = FnProtocol::new(4, 6, 8, |_, input, tr| {
        (input & (0x15 ^ tr.as_u64())).count_ones() % 2 == 1
    });
    let a = ProductInput::uniform(4, 6);
    let b = ProductInput::uniform(4, 6);
    c.bench_function("engine_walk_4proc_8turns", |bch| {
        bch.iter(|| exact_comparison(&proto, std::hint::black_box(&a), &b))
    });
}

fn bench_max_clique(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    // The Appendix B active-subgraph shape: density 1/4 with a planted
    // 40-clique in 200 vertices.
    let mut g = UGraph::random(&mut rng, 200, 0.25);
    let planted: Vec<usize> = (0..40).map(|i| i * 5).collect();
    for &u in &planted {
        for &v in &planted {
            if u != v {
                g.set_edge(u, v, true);
            }
        }
    }
    c.bench_function("bron_kerbosch_active_subgraph", |b| {
        b.iter(|| max_clique(std::hint::black_box(&g)))
    });
}

criterion_group!(
    benches,
    bench_prg_expand,
    bench_rank,
    bench_engine_walk,
    bench_max_clique
);
criterion_main!(benches);
