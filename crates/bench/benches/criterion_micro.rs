//! Criterion micro-benchmarks for the computational substrate: PRG
//! expansion, F₂ rank, the exact engine walk, Bron–Kerbosch on the
//! Appendix B active subgraph, and the transcript-key sort at the heart
//! of the sampled estimator (comparison sort vs the LSD radix sort).

use bcc_congest::FnProtocol;
use bcc_core::{exact_comparison, radix_sort_u64, ProductInput};
use bcc_f2::{gauss, BitMatrix, BitVec};
use bcc_graphs::clique::max_clique;
use bcc_graphs::digraph::UGraph;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_prg_expand(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("prg_expand");
    for &(k, m) in &[(128usize, 1024usize), (256, 4096)] {
        let mat = BitMatrix::random(&mut rng, k, m - k);
        let seed = BitVec::random(&mut rng, k);
        group.bench_function(format!("k{k}_m{m}"), |b| {
            b.iter(|| mat.left_mul_vec(std::hint::black_box(&seed)))
        });
    }
    group.finish();
}

fn bench_rank(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("f2_rank");
    for &n in &[64usize, 256] {
        group.bench_function(format!("{n}x{n}"), |b| {
            b.iter_batched(
                || BitMatrix::random(&mut rng, n, n),
                |m| gauss::rank(std::hint::black_box(&m)),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_engine_walk(c: &mut Criterion) {
    let proto = FnProtocol::new(4, 6, 8, |_, input, tr| {
        (input & (0x15 ^ tr.as_u64())).count_ones() % 2 == 1
    });
    let a = ProductInput::uniform(4, 6);
    let b = ProductInput::uniform(4, 6);
    c.bench_function("engine_walk_4proc_8turns", |bch| {
        bch.iter(|| exact_comparison(&proto, std::hint::black_box(&a), &b))
    });
}

fn bench_transcript_sort(c: &mut Criterion) {
    // The sampled estimator's hot loop sorts packed prefix keys: a
    // horizon-T protocol leaves only the top T bits varying (the
    // bit-reversed packing), which is exactly the shape the radix sort's
    // constant-byte skip exploits. "before" is the comparison sort the
    // arena used previously; "after" is bcc_core::radix_sort_u64.
    let mut rng = StdRng::seed_from_u64(4);
    let mut group = c.benchmark_group("transcript_sort");
    for &(len, horizon) in &[(1usize << 14, 12u32), (1 << 17, 12), (1 << 17, 48)] {
        let keys: Vec<u64> = (0..len)
            .map(|_| (rng.gen::<u64>() & ((1u64 << horizon) - 1)).reverse_bits())
            .collect();
        group.throughput(Throughput::Elements(len as u64));
        group.bench_function(format!("std_unstable/{len}keys_h{horizon}"), |b| {
            b.iter_batched(
                || keys.clone(),
                |mut v| {
                    v.sort_unstable();
                    v
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_function(format!("radix_lsd/{len}keys_h{horizon}"), |b| {
            b.iter_batched(
                || keys.clone(),
                |mut v| {
                    radix_sort_u64(&mut v);
                    v
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_max_clique(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    // The Appendix B active-subgraph shape: density 1/4 with a planted
    // 40-clique in 200 vertices.
    let mut g = UGraph::random(&mut rng, 200, 0.25);
    let planted: Vec<usize> = (0..40).map(|i| i * 5).collect();
    for &u in &planted {
        for &v in &planted {
            if u != v {
                g.set_edge(u, v, true);
            }
        }
    }
    c.bench_function("bron_kerbosch_active_subgraph", |b| {
        b.iter(|| max_clique(std::hint::black_box(&g)))
    });
}

criterion_group!(
    benches,
    bench_prg_expand,
    bench_rank,
    bench_engine_walk,
    bench_transcript_sort,
    bench_max_clique
);
criterion_main!(benches);
