//! Criterion micro-benchmarks for the computational substrate: PRG
//! expansion, F₂ rank, the exact engine walk, Bron–Kerbosch on the
//! Appendix B active subgraph, and the transcript-key sort at the heart
//! of the sampled estimator (comparison sort vs the LSD radix sort).

use bcc_bench::walk_fixtures::{intersect_fixture, shared_family};
use bcc_congest::FnProtocol;
use bcc_core::{
    exact_comparison, exact_mixture_comparison_mode, exact_mixture_comparison_reference,
    radix_sort_u64, ExecMode, ProductInput,
};
use bcc_f2::{gauss, BitMatrix, BitVec, ConsistentSet};
use bcc_graphs::clique::max_clique;
use bcc_graphs::digraph::UGraph;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_prg_expand(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("prg_expand");
    for &(k, m) in &[(128usize, 1024usize), (256, 4096)] {
        let mat = BitMatrix::random(&mut rng, k, m - k);
        let seed = BitVec::random(&mut rng, k);
        group.bench_function(format!("k{k}_m{m}"), |b| {
            b.iter(|| mat.left_mul_vec(std::hint::black_box(&seed)))
        });
    }
    group.finish();
}

fn bench_rank(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("f2_rank");
    for &n in &[64usize, 256] {
        group.bench_function(format!("{n}x{n}"), |b| {
            b.iter_batched(
                || BitMatrix::random(&mut rng, n, n),
                |m| gauss::rank(std::hint::black_box(&m)),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_engine_walk(c: &mut Criterion) {
    let proto = FnProtocol::new(4, 6, 8, |_, input, tr| {
        (input & (0x15 ^ tr.as_u64())).count_ones() % 2 == 1
    });
    let a = ProductInput::uniform(4, 6);
    let b = ProductInput::uniform(4, 6);
    c.bench_function("engine_walk_4proc_8turns", |bch| {
        bch.iter(|| exact_comparison(&proto, std::hint::black_box(&a), &b))
    });
}

/// A decomposition-family walk in the shape the paper produces: members
/// differ from the baseline in one planted row and share every other
/// row's `Arc` (`ProductInput::with_row`), over a moderately expensive
/// parity protocol. "seed" partitions by evaluating the protocol per
/// node for every distribution; "label_planes" evaluates once per shared
/// support row per node and splits with word-parallel plane ops — the
/// before/after of the partition overhaul.
fn bench_walk_partition(c: &mut Criterion) {
    let proto = FnProtocol::new(4, 8, 10, |proc, input, tr| {
        let mask = 0xB5u64 ^ tr.as_u64() ^ ((proc as u64) << 2);
        (input & mask).count_ones() % 2 == 1
    });
    let (members, baseline) = shared_family(4, 8, 6);
    let mut group = c.benchmark_group("walk_partition");
    group.bench_function("seed/6members_10turns", |b| {
        b.iter(|| {
            exact_mixture_comparison_reference(
                &proto,
                std::hint::black_box(&members),
                &baseline,
                ExecMode::Sequential,
            )
        })
    });
    group.bench_function("label_planes/6members_10turns", |b| {
        b.iter(|| {
            exact_mixture_comparison_mode(
                &proto,
                std::hint::black_box(&members),
                &baseline,
                ExecMode::Sequential,
            )
        })
    });
    group.finish();
}

/// Dense-vs-sparse consistent-set intersection at huge-support scale: a
/// 2^17-point universe with 512 live points, filtered by a label plane.
/// The dense side pays `O(universe/64)` words per split; the sparse side
/// pays `O(live)` — the price-by-occupancy argument, measured.
fn bench_consistent_intersect(c: &mut Criterion) {
    let universe = 1usize << 17;
    let live = 512usize;
    // The sparse hybrid set vs the same occupancy forced dense (as the
    // seed representation kept it), split by one random label plane.
    let fx = intersect_fixture(universe, live, bcc_bench::SEED);
    let (plane, sparse, mask) = (fx.plane, fx.sparse, fx.mask);
    let mut group = c.benchmark_group("consistent_intersect");
    group.throughput(Throughput::Elements(live as u64));
    group.bench_function("dense_mask/2e17universe_512live", |b| {
        let mut out = BitVec::zeros(universe);
        b.iter(|| {
            // alive AND plane + popcount, the seed walk's split cost.
            out = mask.clone();
            let mut count = 0usize;
            for (w, &p) in out.as_words().iter().zip(&plane) {
                count += (w & p).count_ones() as usize;
            }
            std::hint::black_box(count)
        })
    });
    group.bench_function("sparse_indices/2e17universe_512live", |b| {
        let mut out = ConsistentSet::empty(universe);
        b.iter(|| {
            out.assign_filtered(std::hint::black_box(&sparse), &plane, true);
            std::hint::black_box(out.count())
        })
    });
    group.finish();
}

fn bench_transcript_sort(c: &mut Criterion) {
    // The sampled estimator's hot loop sorts packed prefix keys: a
    // horizon-T protocol leaves only the top T bits varying (the
    // bit-reversed packing), which is exactly the shape the radix sort's
    // constant-byte skip exploits. "before" is the comparison sort the
    // arena used previously; "after" is bcc_core::radix_sort_u64.
    let mut rng = StdRng::seed_from_u64(4);
    let mut group = c.benchmark_group("transcript_sort");
    for &(len, horizon) in &[(1usize << 14, 12u32), (1 << 17, 12), (1 << 17, 48)] {
        let keys: Vec<u64> = (0..len)
            .map(|_| (rng.gen::<u64>() & ((1u64 << horizon) - 1)).reverse_bits())
            .collect();
        group.throughput(Throughput::Elements(len as u64));
        group.bench_function(format!("std_unstable/{len}keys_h{horizon}"), |b| {
            b.iter_batched(
                || keys.clone(),
                |mut v| {
                    v.sort_unstable();
                    v
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_function(format!("radix_lsd/{len}keys_h{horizon}"), |b| {
            b.iter_batched(
                || keys.clone(),
                |mut v| {
                    radix_sort_u64(&mut v);
                    v
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_max_clique(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    // The Appendix B active-subgraph shape: density 1/4 with a planted
    // 40-clique in 200 vertices.
    let mut g = UGraph::random(&mut rng, 200, 0.25);
    let planted: Vec<usize> = (0..40).map(|i| i * 5).collect();
    for &u in &planted {
        for &v in &planted {
            if u != v {
                g.set_edge(u, v, true);
            }
        }
    }
    c.bench_function("bron_kerbosch_active_subgraph", |b| {
        b.iter(|| max_clique(std::hint::black_box(&g)))
    });
}

criterion_group!(
    benches,
    bench_prg_expand,
    bench_rank,
    bench_engine_walk,
    bench_walk_partition,
    bench_consistent_intersect,
    bench_transcript_sort,
    bench_max_clique
);
criterion_main!(benches);
