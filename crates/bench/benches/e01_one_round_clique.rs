//! E1 — Theorem 1.6 / Corollary 1.7: one-round planted-clique
//! indistinguishability.
//!
//! For each `(n, k)` the exact engine computes
//! `‖P(Π, A_rand) − P(Π, A_k)‖` for one round of each natural protocol;
//! the table confronts it with the paper's `k²/√n` bound. The distance is
//! the advantage of the *optimal* test of that protocol's transcript, so
//! "measured ≤ bound" is the theorem and "measured/bound" shows the slack.

use bcc_bench::{banner, check, f, print_table};
use bcc_planted::protocols::{
    degree_threshold, random_mask_parity, row_parity, suspect_intersection,
};
use bcc_planted::{bounds, exact_experiment};

fn main() {
    banner(
        "E1: one-round planted clique",
        "Theorem 1.6, Corollary 1.7",
        "exact transcript distance of 1-round BCAST(1) protocols on A_rand vs A_k <= O(k^2/sqrt(n))",
    );
    let mut rows = Vec::new();
    for &n in &[6u32, 8, 10] {
        for &k in &[2usize, 3] {
            let bound = bounds::theorem_1_6(n as usize, k);
            let protos: Vec<(&str, f64)> = vec![
                (
                    "degree-threshold",
                    exact_experiment(&degree_threshold(n, 1, n / 2 + 1), n, k).tv(),
                ),
                (
                    "suspect-intersect",
                    exact_experiment(&suspect_intersection(n, 1), n, k).tv(),
                ),
                (
                    "row-parity",
                    exact_experiment(&row_parity(n, 1, 0x2B), n, k).tv(),
                ),
                (
                    "random-mask",
                    exact_experiment(&random_mask_parity(n, 1, bcc_bench::SEED), n, k).tv(),
                ),
            ];
            for (name, tv) in protos {
                rows.push(vec![
                    n.to_string(),
                    k.to_string(),
                    name.to_string(),
                    f(tv),
                    f(bound),
                    f(tv / bound),
                    check(tv <= bound),
                ]);
            }
        }
    }
    print_table(
        &[
            "n",
            "k",
            "protocol",
            "exact TV",
            "k^2/sqrt(n)",
            "ratio",
            "bound",
        ],
        &rows,
    );
    println!(
        "\nShape check: ratios stay bounded while k^2/sqrt(n) -> 0 in the\n\
         k = n^(1/4-eps) regime (Corollary 1.7: no one-round protocol\n\
         gains constant advantage)."
    );
}
