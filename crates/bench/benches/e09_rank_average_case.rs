//! E9 — Theorem 1.4 and [Kol99]: the average-case full-rank lower bound.
//!
//! Part 1: the rank law — Kolchin's `Q_s` constants against the exact
//! finite-`n` law and sampled matrices (the paper quotes
//! `Q₀ ≈ 0.2887880950866`).
//!
//! Part 2: the pseudo (rank-deficient) distribution against uniform under
//! the exact engine for small `n` — the indistinguishability that powers
//! the theorem.
//!
//! Part 3: the counting argument — assuming 99% accuracy forces an error
//! bound that contradicts it.

use bcc_bench::{banner, check, f, print_table, rate, sci};
use bcc_congest::FnProtocol;
use bcc_core::{Estimator, ExactEstimator};
use bcc_f2::rank_dist::{empirical_rank_pmf, limit_q, rank_probability};
use bcc_lab::{Scenario, Workload};
use bcc_prg::rank_hardness::{constant_guess_accuracy, theorem_1_4_error_bound};
use bcc_prg::toy;
use criterion::Throughput;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "E9: average-case full-rank hardness",
        "Theorem 1.4, Kolchin rank law",
        "rank law paper-vs-measured; pseudo vs uniform exact distance; the 0.99 contradiction",
    );
    let mut rng = StdRng::seed_from_u64(bcc_bench::SEED);

    println!("\n-- rank law of uniform n x n matrices --");
    let mut rows = Vec::new();
    for &n in &[16usize, 32, 64] {
        let emp = empirical_rank_pmf(&mut rng, n, n, 3000);
        for s in 0..3usize {
            rows.push(vec![
                n.to_string(),
                s.to_string(),
                f(limit_q(s as u32)),
                f(rank_probability(n, n, n - s)),
                f(emp[n - s]),
            ]);
        }
    }
    print_table(
        &["n", "corank s", "Q_s (limit)", "exact P_{n,s}", "sampled"],
        &rows,
    );
    println!("  paper: Q_0 ≈ 0.2887880950866; measured column should straddle it.");

    println!("\n-- exact engine: pseudo (rank<=n-1) vs uniform rows, j rounds --");
    let mut rows = Vec::new();
    for &n in &[3usize, 4] {
        let k = (n - 1) as u32; // toy PRG with k = n-1 IS the U_B of Thm 1.4
        for j in 1..=2u32 {
            let proto = FnProtocol::new(n, k + 1, j * n as u32, move |proc, input, tr| {
                let mask = (0x9D ^ tr.as_u64() ^ ((proc as u64) << 1)) & ((1 << (k + 1)) - 1);
                (input & mask).count_ones() % 2 == 1
            });
            let members = toy::family(n, k);
            let baseline = toy::uniform_input(n, k);
            let cmp = ExactEstimator::default().estimate_full(&proto, &members, &baseline);
            rows.push(vec![
                n.to_string(),
                j.to_string(),
                sci(cmp.tv()),
                sci(cmp.progress()),
            ]);
        }
    }
    print_table(&["n", "j", "mixture TV", "L_progress"], &rows);

    println!("\n-- the counting argument (Section 6.1) --");
    let mut rows = Vec::new();
    for &n in &[32usize, 64, 128] {
        let implied = theorem_1_4_error_bound(0.01, 0.001, n);
        rows.push(vec![
            n.to_string(),
            f(constant_guess_accuracy(n)),
            "0.99".into(),
            f(implied),
            check(implied > 0.01),
        ]);
    }
    print_table(
        &[
            "n",
            "oblivious acc",
            "assumed acc",
            "implied error >=",
            "contradiction",
        ],
        &rows,
    );
    println!(
        "\nShape check: implied error ≈ 0.087 >> the assumed 0.01 — the\n\
         paper derives > 0.05 at the same point; no n/20-round protocol\n\
         reaches 99% accuracy."
    );

    println!("\n-- scaled: pseudo vs uniform at n in the thousands (bcc-lab sweep) --");
    let members = 4usize;
    let scenario = Scenario::builder("e09-rank-scaled")
        .workload(Workload::RankDistance { members })
        .n(&[1024, 2048, 4096])
        .k(&[6, 8])
        .rounds(&[12])
        .seeds(&[bcc_bench::SEED])
        .tolerance(0.25)
        .initial_samples(4096)
        .max_samples(1 << 17)
        .build();
    let sweep = scenario.sweep_ephemeral();
    let mut rows = Vec::new();
    for r in &sweep.records {
        // Effective end-to-end rate: final-budget transcripts (samples per
        // side × (members + baseline)) over the point's full wall-clock,
        // which includes the earlier, smaller adaptive batches — the rate
        // that matters when planning a sweep, below raw simulator speed.
        let transcripts = r.samples * (members as u64 + 1);
        rows.push(vec![
            r.n.to_string(),
            r.k.to_string(),
            r.rounds.to_string(),
            f(r.estimate),
            f(r.noise_floor),
            r.samples.to_string(),
            format!("{:.0}", r.wall_ms),
            rate(Throughput::Elements(transcripts), r.wall_ms / 1e3),
        ]);
    }
    print_table(
        &[
            "n",
            "k",
            "turns",
            "mixture TV",
            "floor",
            "samples/side",
            "ms",
            "eff transcripts/s",
        ],
        &rows,
    );
    println!(
        "\nShape check: every floor <= 0.25 (adaptive budget; met = {}),\n\
         and measured TV stays at the floor — the rank-deficient family is\n\
         indistinguishable at scales the exact engine cannot reach.",
        sweep.all_met_tolerance()
    );
}
