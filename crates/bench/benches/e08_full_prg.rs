//! E8 — Theorem 1.3 / Theorem 5.4: the complete matrix PRG.
//!
//! Part 1: construction accounting — rounds `⌈k(m−k)/n⌉` and seed bits
//! `k + ⌈k(m−k)/n⌉` per processor, measured by the network, against the
//! theorem's formulas.
//!
//! Part 2: exact mixture indistinguishability for small `(n, k, m)` over
//! the full matrix family (`2^{k(m−k)}` members).

use bcc_bench::{banner, check, f, print_table, sci};
use bcc_congest::FnProtocol;
use bcc_core::{Estimator, ExactEstimator};
use bcc_prg::full::{family, uniform_input};
use bcc_prg::MatrixPrg;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "E8: the complete matrix PRG",
        "Theorem 1.3, Theorem 5.4",
        "construction rounds/seed bits measured vs formula; exact indistinguishability over the matrix family",
    );
    let mut rng = StdRng::seed_from_u64(bcc_bench::SEED);

    println!("\n-- Theorem 1.3: construction accounting --");
    let mut rows = Vec::new();
    for &(n, k, m) in &[
        (64usize, 16u32, 48u32),
        (128, 16, 80),
        (256, 24, 256),
        (1024, 32, 1024),
    ] {
        let prg = MatrixPrg::new(n, k, m).expect("valid");
        let run = prg.run(&mut rng);
        let theory_rounds = (k as usize * (m - k) as usize).div_ceil(n);
        rows.push(vec![
            n.to_string(),
            k.to_string(),
            m.to_string(),
            run.rounds_used.to_string(),
            theory_rounds.to_string(),
            run.seed_bits_per_processor.to_string(),
            format!("{}x", m as usize / run.seed_bits_per_processor.max(1)),
            check(run.rounds_used == theory_rounds),
        ]);
    }
    print_table(
        &[
            "n",
            "k",
            "m",
            "rounds",
            "ceil(k(m-k)/n)",
            "seed bits",
            "stretch",
            "ok",
        ],
        &rows,
    );

    println!("\n-- Theorem 5.4: exact mixture distance over all 2^(k(m-k)) matrices --");
    let mut rows = Vec::new();
    for &(n, k, m) in &[(3usize, 3u32, 5u32), (3, 4, 6), (2, 5, 7), (2, 6, 8)] {
        for j in 1..=2u32 {
            let proto = FnProtocol::new(n, m, j * n as u32, move |proc, input, tr| {
                let mask = (0xB4E1 ^ (tr.as_u64() << 1) ^ ((proc as u64) << 2)) & ((1 << m) - 1);
                (input & mask).count_ones() % 2 == 1
            });
            let members = family(n, k, m);
            let baseline = uniform_input(n, m);
            let cmp = ExactEstimator::default().estimate_full(&proto, &members, &baseline);
            rows.push(vec![
                n.to_string(),
                k.to_string(),
                m.to_string(),
                j.to_string(),
                members.len().to_string(),
                sci(cmp.tv()),
                sci(cmp.progress()),
                f(cmp.tv() / cmp.progress().max(1e-300)),
            ]);
        }
    }
    print_table(
        &[
            "n",
            "k",
            "m",
            "j",
            "|family|",
            "mixture TV",
            "L_progress",
            "TV/progress",
        ],
        &rows,
    );

    println!("\n-- Lemma 7.3: E_M ||f(U_m) - f(U_M)||^2 <= 2^-k (m-k)^2 E[f] --");
    let mut rows = Vec::new();
    let (k, m) = (4u32, 7u32);
    for fam in bcc_stats::boolfn::Family::all(bcc_bench::SEED) {
        let table = fam.build(m).to_f64_table();
        let (lhs, rhs) = bcc_prg::full::lemma_7_3_check(k, m, &table);
        rows.push(vec![
            fam.label().into(),
            sci(lhs),
            sci(rhs),
            check(lhs <= rhs + 1e-12),
        ]);
    }
    print_table(&["f", "E_M dist^2", "bound", "ok"], &rows);

    println!("\n-- Lemma 7.2: restricted domains, E_M distance <= 2^(-k/9) --");
    let mut rng = StdRng::seed_from_u64(bcc_bench::SEED);
    let mut rows = Vec::new();
    for frac in [0.75f64, 0.5, 0.25] {
        let mut domain: Vec<u64> = (0..(1u64 << m))
            .filter(|_| rand::Rng::gen::<f64>(&mut rng) < frac)
            .collect();
        domain.sort_unstable();
        let table = bcc_stats::TruthTable::random(&mut rng, m).to_f64_table();
        let got = bcc_prg::full::lemma_7_2_mean(k, m, &table, &domain);
        let bound = 2f64.powf(-(k as f64) / 9.0);
        rows.push(vec![
            format!("{frac:.2}"),
            domain.len().to_string(),
            sci(got),
            sci(bound),
            check(got <= bound),
        ]);
    }
    print_table(&["|D|/2^m", "|D|", "E_M distance", "2^(-k/9)", "ok"], &rows);

    println!(
        "\nShape check: at fixed (n, m - k, protocol) the mixture TV\n\
         decays with k (the 2^(-Omega(k)) of Theorem 5.4), and the\n\
         construction stretch factor grows once m = O(n)."
    );
}
