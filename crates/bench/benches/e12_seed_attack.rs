//! E12 — Theorem 8.1: the seed-length attack.
//!
//! The `k+1`-round image-membership attack against the matrix PRG:
//! measured true/false positive rates and advantage, with the exact
//! false-positive rate `E[2^{rank(X)−n}]` as the paper column.

use bcc_bench::{banner, check, f, print_table, sci};
use bcc_prg::attack::{exact_false_positive_rate, measure_attack};
use bcc_prg::MatrixPrg;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "E12: seed-length lower bound",
        "Theorem 8.1",
        "any (k, m) PRG broken in k+1 rounds; advantage -> max as n grows",
    );
    let mut rng = StdRng::seed_from_u64(bcc_bench::SEED);
    let mut rows = Vec::new();
    for &(n, k) in &[
        (6usize, 4u32),
        (8, 4),
        (12, 6),
        (16, 8),
        (24, 10),
        (32, 12),
        (48, 16),
    ] {
        let prg = MatrixPrg::new(n, k, 2 * k + 4).expect("valid");
        let adv = measure_attack(&prg, 600, &mut rng);
        let exact_fpr = exact_false_positive_rate(n, k as usize);
        rows.push(vec![
            n.to_string(),
            k.to_string(),
            adv.rounds_used.to_string(),
            f(adv.true_positive_rate),
            sci(adv.false_positive_rate),
            sci(exact_fpr),
            f(adv.advantage),
            check(adv.true_positive_rate == 1.0),
        ]);
    }
    print_table(
        &[
            "n",
            "k",
            "rounds",
            "TPR",
            "FPR meas",
            "FPR exact",
            "advantage",
            "ok",
        ],
        &rows,
    );
    println!(
        "\nShape check: rounds = k+1 exactly; TPR = 1 always; FPR tracks\n\
         E[2^(rank-n)] and vanishes with n — so the PRG's Omega(k)\n\
         security (Theorem 5.4) is tight up to constants (Theorem 8.1)."
    );
}
