//! E19 (extension) — footnotes 1–2: `BCAST(1)` versus `BCAST(w)`,
//! exactly.
//!
//! Packing `w` contiguous single-bit turns into one `w`-bit message
//! preserves the transcript distribution (hence every distance) while
//! dividing the turn count by `w` — the constructive direction of the
//! footnote-2 transfer. The second table shows the lower-bound direction
//! on the toy PRG: a `BCAST(w)` round extracts at most `w` single-bit
//! rounds' worth of progress, so the `k`-round security budget of the PRG
//! shrinks by exactly the predicted `w` factor, no more.

use bcc_bench::{banner, check, f, print_table, rate, sci};
use bcc_congest::wide::{FnWideProtocol, PackedAdapter};
use bcc_congest::{FnProtocol, TurnProtocol, TurnTranscript};
use bcc_core::{exact_wide_comparison, Estimator, ExactEstimator};
use bcc_lab::{Scenario, Workload};
use bcc_prg::toy;
use criterion::Throughput;

/// A BCAST(1) protocol whose speaker is contiguous for `w`-turn blocks.
struct Contig<F> {
    inner: FnProtocol<F>,
    block: u32,
}

impl<F: Fn(usize, u64, &TurnTranscript) -> bool> TurnProtocol for Contig<F> {
    fn n(&self) -> usize {
        self.inner.n()
    }
    fn input_bits(&self) -> u32 {
        self.inner.input_bits()
    }
    fn horizon(&self) -> u32 {
        self.inner.horizon()
    }
    fn speaker(&self, t: u32) -> usize {
        (t / self.block) as usize % self.n()
    }
    fn bit(&self, proc: usize, input: u64, tr: &TurnTranscript) -> bool {
        self.inner.bit(proc, input, tr)
    }
}

fn main() {
    banner(
        "E19 (extension): BCAST(1) vs BCAST(w)",
        "footnotes 1-2",
        "packing w bits per message preserves exact distances at 1/w the turns; security budgets scale by w",
    );

    println!("\n-- packing preserves the exact distance --");
    let mut rows = Vec::new();
    for &w in &[2u32, 4] {
        let make = |block: u32| Contig {
            inner: FnProtocol::new(2, 4, 8, |_, input, tr| (input >> (tr.len() % 4)) & 1 == 1),
            block,
        };
        let members = vec![bcc_core::ProductInput::new(vec![
            bcc_core::RowSupport::explicit(4, (0..16).filter(|x| x % 3 != 0).collect()),
            bcc_core::RowSupport::uniform(4),
        ])];
        let baseline = bcc_core::ProductInput::uniform(2, 4);
        let bit = ExactEstimator::default().estimate_full(&make(w), &members, &baseline);
        let wide = exact_wide_comparison(&PackedAdapter::new(make(w), w), &members, &baseline);
        rows.push(vec![
            w.to_string(),
            bit.horizon.to_string(),
            wide.horizon.to_string(),
            sci(bit.tv()),
            sci(wide.tv()),
            check((bit.tv() - wide.tv()).abs() < 1e-12),
        ]);
    }
    print_table(
        &[
            "w",
            "BCAST(1) turns",
            "BCAST(w) turns",
            "TV (bits)",
            "TV (wide)",
            "equal",
        ],
        &rows,
    );

    println!("\n-- toy PRG security under wider messages --");
    // A w-bit turn reveals w chosen parities at once; the progress per
    // turn grows, but by at most the factor w (the footnote-1 loss).
    let (n, k) = (2usize, 8u32);
    let members = toy::family(n, k);
    let baseline = toy::uniform_input(n, k);
    let mut rows = Vec::new();
    let mut base_progress = None;
    for &w in &[1u32, 2, 4] {
        let proto = FnWideProtocol::new(n, k + 1, w, n as u32, move |proc, input, tr| {
            // Ship w different masked-threshold bits per message.
            let mut msg = 0u64;
            for b in 0..w {
                let mask = ((0x3C96A5u64
                    ^ (tr.as_u64() << 1)
                    ^ ((proc as u64) << 3)
                    ^ (u64::from(b) << 7))
                    & ((1 << (k + 1)) - 1))
                    | (1 << k);
                if (input & mask).count_ones() >= (k + 1) / 3 {
                    msg |= 1 << b;
                }
            }
            msg
        });
        let cmp = exact_wide_comparison(&proto, &members, &baseline);
        let p = cmp.progress();
        let factor = base_progress.map_or(1.0, |b: f64| p / b);
        if w == 1 {
            base_progress = Some(p);
        }
        rows.push(vec![
            w.to_string(),
            n.to_string(),
            sci(cmp.tv()),
            sci(p),
            format!("{factor:.2}"),
            check(factor <= w as f64 * 2.0 + 1e-9),
        ]);
    }
    print_table(
        &[
            "w",
            "turns",
            "mixture TV",
            "L_progress",
            "progress vs w=1",
            "<= O(w)",
        ],
        &rows,
    );
    println!(
        "\nShape check: equal distances at 1/w turns (packing), and per-\n\
         turn progress grows at most ~linearly in w — the footnote-1\n\
         'log n factor loss' is real but no worse."
    );

    println!("\n-- scaled: exact wide walks at n in the thousands (bcc-lab sweep) --");
    // The same coset family the e09 sweep samples, but under w-bit
    // masked-parity messages and walked *exactly* by the frontier-task
    // wide engine: zero noise floor, budget = the walk's reachable-node
    // bound. The w axis shows wider messages extracting more distance in
    // the same number of turns.
    let scenario = Scenario::builder("e19-wide-scaled")
        .workload(Workload::WideMessages { members: 3 })
        .n(&[1024, 2048, 4096])
        .k(&[4, 6])
        .rounds(&[6])
        .bandwidth(&[2, 3])
        .seeds(&[bcc_bench::SEED])
        .tolerance(0.25)
        .build();
    let sweep = scenario.sweep_ephemeral();
    let mut rows = Vec::new();
    for r in &sweep.records {
        // Budget retirement rate: the engine's priced reachable-node
        // budget over the point's wall-clock. Dead subtrees are pruned
        // without being visited, so this measures how fast a point
        // retires its worst-case budget, not visited-node throughput
        // (which is lower on sparse walks).
        rows.push(vec![
            r.n.to_string(),
            r.k.to_string(),
            r.rounds.to_string(),
            r.bandwidth.to_string(),
            f(r.estimate),
            r.samples.to_string(),
            format!("{:.0}", r.wall_ms),
            rate(Throughput::Elements(r.samples), r.wall_ms / 1e3),
        ]);
    }
    print_table(
        &[
            "n",
            "k",
            "turns",
            "w",
            "mixture TV (exact)",
            "node budget",
            "ms",
            "budget nodes/s",
        ],
        &rows,
    );
    println!(
        "\nShape check: every point is exact (noise floor {}, all met = {}):\n\
         the frontier-task wide engine prices walks by reachable nodes and\n\
         turns whole (n, k, w) grids into exact distance tables at n far\n\
         beyond what per-point hand runs covered.",
        sweep.max_noise_floor(),
        sweep.all_met_tolerance()
    );

    println!("\n-- past the exact cliff: routed exact/sampled wide sweep --");
    // The same family on a grid that straddles the 2^26-reachable-node
    // budget: rounds 6 walks exactly, rounds 13 (w = 2 boundary: 12) is
    // *only* reachable through the adaptive wide sampler. Sampled rows
    // report their honest noise floor — deep wide transcript supports
    // exceed any sample budget, so the floor can sit above the exact
    // rows' zero by orders of magnitude; that is the cost of leaving the
    // exact regime, and the record says so.
    let scenario = Scenario::builder("e19-wide-sampled")
        .workload(Workload::WideMessagesSampled { members: 3 })
        .n(&[1024, 4096])
        .k(&[4])
        .rounds(&[6, 13])
        .bandwidth(&[2])
        .seeds(&[bcc_bench::SEED])
        .tolerance(0.25)
        .initial_samples(2048)
        .max_samples(1 << 14)
        .build();
    let sweep = scenario.sweep_ephemeral();
    let mut rows = Vec::new();
    for r in &sweep.records {
        let exact_route =
            bcc_core::wide_walk_nodes(r.bandwidth, r.rounds) <= bcc_core::MAX_WIDE_NODES;
        rows.push(vec![
            r.n.to_string(),
            r.rounds.to_string(),
            r.bandwidth.to_string(),
            if exact_route { "exact" } else { "sampled" }.to_string(),
            f(r.estimate),
            f(r.noise_floor),
            r.samples.to_string(),
            format!("{:.0}", r.wall_ms),
        ]);
    }
    print_table(
        &[
            "n",
            "turns",
            "w",
            "route",
            "mixture TV",
            "floor",
            "budget",
            "ms",
        ],
        &rows,
    );
    println!(
        "\nShape check: the rounds-13 rows price {} reachable nodes — beyond\n\
         the exact budget, impossible before the sampled backend — and the\n\
         in-budget rows cross-check the sampler against the exact walk (the\n\
         committed differential suite pins this at every width).",
        bcc_core::wide_walk_nodes(2, 13)
    );
}
