//! E19 (extension) — footnotes 1–2: `BCAST(1)` versus `BCAST(w)`,
//! exactly.
//!
//! Packing `w` contiguous single-bit turns into one `w`-bit message
//! preserves the transcript distribution (hence every distance) while
//! dividing the turn count by `w` — the constructive direction of the
//! footnote-2 transfer. The second table shows the lower-bound direction
//! on the toy PRG: a `BCAST(w)` round extracts at most `w` single-bit
//! rounds' worth of progress, so the `k`-round security budget of the PRG
//! shrinks by exactly the predicted `w` factor, no more.

use bcc_bench::{banner, check, print_table, sci};
use bcc_congest::wide::{FnWideProtocol, PackedAdapter};
use bcc_congest::{FnProtocol, TurnProtocol, TurnTranscript};
use bcc_core::{exact_wide_comparison, Estimator, ExactEstimator};
use bcc_prg::toy;

/// A BCAST(1) protocol whose speaker is contiguous for `w`-turn blocks.
struct Contig<F> {
    inner: FnProtocol<F>,
    block: u32,
}

impl<F: Fn(usize, u64, &TurnTranscript) -> bool> TurnProtocol for Contig<F> {
    fn n(&self) -> usize {
        self.inner.n()
    }
    fn input_bits(&self) -> u32 {
        self.inner.input_bits()
    }
    fn horizon(&self) -> u32 {
        self.inner.horizon()
    }
    fn speaker(&self, t: u32) -> usize {
        (t / self.block) as usize % self.n()
    }
    fn bit(&self, proc: usize, input: u64, tr: &TurnTranscript) -> bool {
        self.inner.bit(proc, input, tr)
    }
}

fn main() {
    banner(
        "E19 (extension): BCAST(1) vs BCAST(w)",
        "footnotes 1-2",
        "packing w bits per message preserves exact distances at 1/w the turns; security budgets scale by w",
    );

    println!("\n-- packing preserves the exact distance --");
    let mut rows = Vec::new();
    for &w in &[2u32, 4] {
        let make = |block: u32| Contig {
            inner: FnProtocol::new(2, 4, 8, |_, input, tr| (input >> (tr.len() % 4)) & 1 == 1),
            block,
        };
        let members = vec![bcc_core::ProductInput::new(vec![
            bcc_core::RowSupport::explicit(4, (0..16).filter(|x| x % 3 != 0).collect()),
            bcc_core::RowSupport::uniform(4),
        ])];
        let baseline = bcc_core::ProductInput::uniform(2, 4);
        let bit = ExactEstimator::default().estimate_full(&make(w), &members, &baseline);
        let wide = exact_wide_comparison(&PackedAdapter::new(make(w), w), &members, &baseline);
        rows.push(vec![
            w.to_string(),
            bit.horizon.to_string(),
            wide.horizon.to_string(),
            sci(bit.tv()),
            sci(wide.tv()),
            check((bit.tv() - wide.tv()).abs() < 1e-12),
        ]);
    }
    print_table(
        &[
            "w",
            "BCAST(1) turns",
            "BCAST(w) turns",
            "TV (bits)",
            "TV (wide)",
            "equal",
        ],
        &rows,
    );

    println!("\n-- toy PRG security under wider messages --");
    // A w-bit turn reveals w chosen parities at once; the progress per
    // turn grows, but by at most the factor w (the footnote-1 loss).
    let (n, k) = (2usize, 8u32);
    let members = toy::family(n, k);
    let baseline = toy::uniform_input(n, k);
    let mut rows = Vec::new();
    let mut base_progress = None;
    for &w in &[1u32, 2, 4] {
        let proto = FnWideProtocol::new(n, k + 1, w, n as u32, move |proc, input, tr| {
            // Ship w different masked-threshold bits per message.
            let mut msg = 0u64;
            for b in 0..w {
                let mask = ((0x3C96A5u64
                    ^ (tr.as_u64() << 1)
                    ^ ((proc as u64) << 3)
                    ^ (u64::from(b) << 7))
                    & ((1 << (k + 1)) - 1))
                    | (1 << k);
                if (input & mask).count_ones() >= (k + 1) / 3 {
                    msg |= 1 << b;
                }
            }
            msg
        });
        let cmp = exact_wide_comparison(&proto, &members, &baseline);
        let p = cmp.progress();
        let factor = base_progress.map_or(1.0, |b: f64| p / b);
        if w == 1 {
            base_progress = Some(p);
        }
        rows.push(vec![
            w.to_string(),
            n.to_string(),
            sci(cmp.tv()),
            sci(p),
            format!("{factor:.2}"),
            check(factor <= w as f64 * 2.0 + 1e-9),
        ]);
    }
    print_table(
        &[
            "w",
            "turns",
            "mixture TV",
            "L_progress",
            "progress vs w=1",
            "<= O(w)",
        ],
        &rows,
    );
    println!(
        "\nShape check: equal distances at 1/w turns (packing), and per-\n\
         turn progress grows at most ~linearly in w — the footnote-1\n\
         'log n factor loss' is real but no worse."
    );
}
