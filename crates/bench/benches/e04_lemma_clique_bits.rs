//! E4 — Lemma 1.8: planting a random size-`k` all-ones pattern moves any
//! Boolean function by `O(k/√n)` on average over the pattern.
//!
//! Exact over all `binomial(n,k)` patterns; the table shows the linear
//! growth in `k` (the hybrid argument's `k` steps of Lemma 1.10) and the
//! `1/√n` decay.

use bcc_bench::{banner, check, f, print_table};
use bcc_planted::bounds;
use bcc_planted::lemmas::lemma_1_8_exact;
use bcc_stats::boolfn::Family;

fn main() {
    banner(
        "E4: clique-pattern statistical inequality",
        "Lemma 1.8",
        "E_C ||f(U) - f(U^C)|| <= O(k/sqrt(n)), exact over all size-k subsets",
    );
    let mut rows = Vec::new();
    for &n in &[9u32, 13, 17] {
        for &k in &[1usize, 2, 3] {
            let bound = bounds::lemma_1_8(n as usize, k);
            for fam in [
                Family::Majority,
                Family::ShiftedThreshold,
                Family::Random(bcc_bench::SEED),
            ] {
                let table = fam.build(n);
                let got = lemma_1_8_exact(&table, k);
                rows.push(vec![
                    n.to_string(),
                    k.to_string(),
                    fam.label().into(),
                    f(got),
                    f(got * (n as f64).sqrt() / k as f64),
                    f(bound),
                    check(got <= bound),
                ]);
            }
        }
    }
    print_table(
        &["n", "k", "f", "measured", "x sqrt(n)/k", "2k/sqrt(n)", "ok"],
        &rows,
    );
    println!(
        "\nShape check: the normalized column 'x sqrt(n)/k' is (nearly)\n\
         k-independent for majority — the lemma's k-step hybrid is what\n\
         actually happens."
    );
}
