//! `bcc-obs` — observability for a bitwise-deterministic estimator.
//!
//! Every number this workspace produces is required to be bit-identical
//! across thread counts, F2 kernels, parallel/sequential execution and
//! sweep resumes. That constraint shapes the telemetry layer in two
//! ways:
//!
//! 1. **Observability must be invisible.** Enabling metrics or tracing
//!    cannot change a single output bit (pinned by the differential
//!    tests in `bcc-core`). Hence: no instrumentation on the data path,
//!    only counters beside it.
//! 2. **Work metrics are themselves deterministic.** The expensive
//!    loops (exact-walk nodes, live points priced, keys radix-sorted
//!    and merged, kernel words processed, samples drawn) are counted as
//!    integer totals that commute under any schedule, so the totals are
//!    identical across `RAYON_NUM_THREADS` and `BCC_KERNEL` values —
//!    which makes them a correctness oracle, not just a dashboard.
//!
//! The layer has three parts:
//!
//! - a [`Registry`] of named counters / series / log-bucketed
//!   histograms, split into [`Class::Work`] (deterministic) and
//!   [`Class::Wall`] (timings, scheduling artifacts). Registries are
//!   cheap `Arc` handles; [`Registry::install`] scopes one to the
//!   current thread so library code can attribute work to the active
//!   run via [`current`], and hot loops instead carry the handle (or a
//!   local tally flushed coarsely) across rayon spawns.
//! - [`span`] / [`Registry::span`]: RAII scoped timers that record
//!   wall-class duration histograms and, when `BCC_TRACE=<path>` (or
//!   [`trace::install`]) is set, emit Chrome-trace-event JSON viewable
//!   in `chrome://tracing` / Perfetto. With no registry installed and
//!   tracing off, a span is two branches and no clock read.
//! - process-wide work totals (keys sorted/merged, kernel words per
//!   method family) kept as relaxed atomics here so `bcc-f2` and
//!   `bcc-core` can count without depending on a scope being installed
//!   on their thread; a [`Snapshot`] reports them as deltas from the
//!   registry's creation time. Kernel-word counting is gated on any
//!   scope being active at all, so the per-word-op overhead is a single
//!   relaxed load when nobody is looking.
//!
//! Snapshots render as hand-rolled JSON ([`Snapshot::to_json`], the
//! `metrics.json` files `bcc-lab` writes next to each sweep's
//! `records.jsonl`) or as a text table ([`Snapshot::render_text`]).

#![forbid(unsafe_code)]

pub mod merge;
pub mod trace;

pub use merge::merge_snapshots;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Which determinism contract a metric lives under.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Class {
    /// Deterministic work: integer totals that commute under any
    /// schedule and are therefore identical across thread counts and
    /// kernels. Safe to assert on in tests.
    Work,
    /// Wall-clock or scheduling-dependent: span timings, chunk counts,
    /// pool-slot reuse. Useful for profiling, never asserted equal.
    Wall,
}

impl Class {
    fn label(self) -> &'static str {
        match self {
            Class::Work => "work",
            Class::Wall => "wall",
        }
    }
}

// ---------------------------------------------------------------------------
// Process-wide work totals
// ---------------------------------------------------------------------------

static KEYS_SORTED: AtomicU64 = AtomicU64::new(0);
static KEYS_MERGED: AtomicU64 = AtomicU64::new(0);

/// F2 word-kernel method families, for per-family word totals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelFamily {
    /// Bulk boolean ops: `and`, `and_not`, `or`, `xor_in_place`.
    Boolean = 0,
    /// Reductions: `count_ones`, `dot`, `or_and_fold`.
    Reduce = 1,
    /// Masked filters: `filter_count`, `filter_into`, `filter_indices`,
    /// `ones_indices`.
    Filter = 2,
    /// Radix byte passes: `byte_histogram`, `byte_scatter` (unit: keys).
    Bytes = 3,
    /// Cross-word shifts: `extract_shifted`, `or_shifted_into`.
    Shift = 4,
}

const KERNEL_FAMILIES: usize = 5;
const KERNEL_FAMILY_NAMES: [&str; KERNEL_FAMILIES] =
    ["boolean", "reduce", "filter", "bytes", "shift"];

static KERNEL_WORDS: [AtomicU64; KERNEL_FAMILIES] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// How many registry scopes are installed process-wide. Non-zero means
/// some run is observing, so the (hot) kernel-word counters engage.
static SCOPES_ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// Add to the process-wide radix-sort key total. Always on: the callers
/// (`bcc_core::sample`) count whole slices per call, so the cost is one
/// relaxed add per sort, not per key.
#[inline]
pub fn add_keys_sorted(n: u64) {
    KEYS_SORTED.fetch_add(n, Ordering::Relaxed);
}

/// Add to the process-wide sorted-merge key total. Always on, like
/// [`add_keys_sorted`].
#[inline]
pub fn add_keys_merged(n: u64) {
    KEYS_MERGED.fetch_add(n, Ordering::Relaxed);
}

/// Process-wide total of keys submitted to the radix sorter.
#[inline]
pub fn keys_sorted_total() -> u64 {
    KEYS_SORTED.load(Ordering::Relaxed)
}

/// Process-wide total of keys flowing through sorted merges.
#[inline]
pub fn keys_merged_total() -> u64 {
    KEYS_MERGED.load(Ordering::Relaxed)
}

/// Count words processed by an F2 kernel method family. Gated on a
/// scope being active anywhere in the process: when nothing observes,
/// this is a single relaxed load and a predictable branch.
#[inline]
pub fn add_kernel_words(family: KernelFamily, words: u64) {
    if SCOPES_ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    KERNEL_WORDS[family as usize].fetch_add(words, Ordering::Relaxed);
}

/// Process-wide kernel word total for one method family.
#[inline]
pub fn kernel_words_total(family: KernelFamily) -> u64 {
    KERNEL_WORDS[family as usize].load(Ordering::Relaxed)
}

#[derive(Clone, Copy, Debug)]
struct GlobalsBaseline {
    keys_sorted: u64,
    keys_merged: u64,
    kernel_words: [u64; KERNEL_FAMILIES],
}

impl GlobalsBaseline {
    fn now() -> Self {
        let mut kernel_words = [0u64; KERNEL_FAMILIES];
        for (slot, total) in kernel_words.iter_mut().zip(KERNEL_WORDS.iter()) {
            *slot = total.load(Ordering::Relaxed);
        }
        GlobalsBaseline {
            keys_sorted: keys_sorted_total(),
            keys_merged: keys_merged_total(),
            kernel_words,
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

const HIST_BUCKETS: usize = 65;

#[derive(Clone, Debug, Default)]
struct HistData {
    count: u64,
    total: u64,
    max: u64,
    /// `buckets[b]` counts values whose bit length is `b` (so bucket
    /// `b` spans `[2^(b-1), 2^b)`; bucket 0 is exactly zero).
    buckets: Vec<u64>,
}

impl HistData {
    fn record(&mut self, value: u64) {
        self.count += 1;
        self.total = self.total.saturating_add(value);
        self.max = self.max.max(value);
        if self.buckets.is_empty() {
            self.buckets = vec![0; HIST_BUCKETS];
        }
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<&'static str, (Class, u64)>,
    series: BTreeMap<&'static str, (Class, Vec<u64>)>,
    hists: BTreeMap<&'static str, (Class, HistData)>,
    notes: BTreeMap<&'static str, String>,
}

/// A per-run metrics registry: a cheap, cloneable `Arc` handle.
///
/// Flushes are coarse (once per walk chunk / estimator run / lab
/// point), so the interior is a plain mutex — there are no per-node or
/// per-word lock acquisitions anywhere.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Mutex<Inner>>,
    baseline: GlobalsBaseline,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// Create an empty registry. Process-wide totals observed so far
    /// become the baseline its [`Snapshot`] reports deltas against.
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(Mutex::new(Inner::default())),
            baseline: GlobalsBaseline::now(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Add `value` to the named counter.
    pub fn add(&self, name: &'static str, class: Class, value: u64) {
        let mut inner = self.lock();
        let slot = inner.counters.entry(name).or_insert((class, 0));
        debug_assert_eq!(slot.0, class, "metric class mismatch for {name}");
        slot.1 += value;
    }

    /// Add `value` at `index` of the named series (e.g. per-depth node
    /// counts). The series grows as needed.
    pub fn add_at(&self, name: &'static str, class: Class, index: usize, value: u64) {
        let mut inner = self.lock();
        let slot = inner.series.entry(name).or_insert((class, Vec::new()));
        debug_assert_eq!(slot.0, class, "metric class mismatch for {name}");
        if slot.1.len() <= index {
            slot.1.resize(index + 1, 0);
        }
        slot.1[index] += value;
    }

    /// Record one observation into the named log-bucketed histogram.
    pub fn record(&self, name: &'static str, class: Class, value: u64) {
        let mut inner = self.lock();
        let slot = inner
            .hists
            .entry(name)
            .or_insert((class, HistData::default()));
        debug_assert_eq!(slot.0, class, "metric class mismatch for {name}");
        slot.1.record(value);
    }

    /// Attach a free-form string note (e.g. the active kernel name).
    /// Later writes to the same name win.
    pub fn note(&self, name: &'static str, value: &str) {
        self.lock().notes.insert(name, value.to_string());
    }

    /// Install this registry as the current scope on this thread; the
    /// returned guard uninstalls it on drop. Scopes nest (innermost
    /// wins). The guard is `!Send` — it must drop on the installing
    /// thread.
    pub fn install(&self) -> Scope {
        SCOPE_STACK.with(|stack| stack.borrow_mut().push(self.clone()));
        SCOPES_ACTIVE.fetch_add(1, Ordering::Relaxed);
        Scope {
            _not_send: PhantomData,
        }
    }

    /// Start a wall-clock span recorded into this registry (and into
    /// the trace sink when enabled), bypassing [`current`] — for code
    /// that carries a handle across worker threads.
    pub fn span(&self, name: &'static str) -> Span {
        Span::begin(name, Some(self.clone()))
    }

    /// Materialize everything recorded so far, plus process-global work
    /// totals as deltas from this registry's creation.
    ///
    /// The global deltas (`global.keys_*`, `kernel.words.*`) are exact
    /// per-run attributions only while no *other* run observes
    /// concurrently; the registry's own counters (flushed run-locally
    /// by walk/exec/lab) are exact always.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        let mut work: Vec<(String, u64)> = Vec::new();
        let mut wall: Vec<(String, u64)> = Vec::new();
        for (name, (class, value)) in &inner.counters {
            match class {
                Class::Work => work.push((name.to_string(), *value)),
                Class::Wall => wall.push((name.to_string(), *value)),
            }
        }
        let globals = GlobalsBaseline::now();
        work.push((
            "global.keys_sorted".to_string(),
            globals.keys_sorted - self.baseline.keys_sorted,
        ));
        work.push((
            "global.keys_merged".to_string(),
            globals.keys_merged - self.baseline.keys_merged,
        ));
        for (i, family) in KERNEL_FAMILY_NAMES.iter().enumerate() {
            work.push((
                format!("kernel.words.{family}"),
                globals.kernel_words[i] - self.baseline.kernel_words[i],
            ));
        }
        work.sort();
        wall.sort();
        Snapshot {
            work,
            wall,
            series: inner
                .series
                .iter()
                .map(|(name, (class, values))| (name.to_string(), *class, values.clone()))
                .collect(),
            spans: inner
                .hists
                .iter()
                .map(|(name, (_, h))| {
                    (
                        name.to_string(),
                        HistSummary {
                            count: h.count,
                            total: h.total,
                            max: h.max,
                            buckets: h
                                .buckets
                                .iter()
                                .enumerate()
                                .filter(|(_, &c)| c > 0)
                                .map(|(b, &c)| (b as u32, c))
                                .collect(),
                        },
                    )
                })
                .collect(),
            notes: inner
                .notes
                .iter()
                .map(|(name, value)| (name.to_string(), value.clone()))
                .collect(),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

thread_local! {
    static SCOPE_STACK: RefCell<Vec<Registry>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard from [`Registry::install`]; uninstalls the scope on drop.
pub struct Scope {
    _not_send: PhantomData<*const ()>,
}

impl Drop for Scope {
    fn drop(&mut self) {
        SCOPE_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        SCOPES_ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The registry installed innermost on this thread, if any.
///
/// Resolution is thread-local on purpose: library entry points resolve
/// the scope once on the calling thread and carry the handle into any
/// rayon region themselves (thread-locals do not cross work-stealing
/// spawns).
pub fn current() -> Option<Registry> {
    SCOPE_STACK.with(|stack| stack.borrow().last().cloned())
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII wall-clock span. Records a duration histogram entry (µs) into
/// its registry and a Chrome trace event when tracing is enabled; with
/// neither active it never reads the clock.
pub struct Span {
    name: &'static str,
    registry: Option<Registry>,
    start: Option<Instant>,
    traced: bool,
}

impl Span {
    /// Start a span against an explicit (optional) registry handle —
    /// for code that resolved [`current`] once at its entry point and
    /// carries the handle through worker threads itself.
    pub fn begin_for(name: &'static str, registry: Option<Registry>) -> Span {
        Span::begin(name, registry)
    }

    fn begin(name: &'static str, registry: Option<Registry>) -> Span {
        let traced = trace::enabled();
        let start = if traced || registry.is_some() {
            Some(Instant::now())
        } else {
            None
        };
        Span {
            name,
            registry,
            start,
            traced,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let end = Instant::now();
        if let Some(registry) = &self.registry {
            let us = end.saturating_duration_since(start).as_micros() as u64;
            registry.record(self.name, Class::Wall, us);
        }
        if self.traced {
            trace::record(self.name, start, end);
        }
    }
}

/// Start a span against the scope installed on this thread (no-op
/// timing-wise if none is installed and tracing is off).
pub fn span(name: &'static str) -> Span {
    Span::begin(name, current())
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// Summary of one duration histogram (all values in µs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub total: u64,
    /// Largest observed value.
    pub max: u64,
    /// Non-empty log2 buckets as `(bit_length, count)` pairs; bucket
    /// `b` spans `[2^(b-1), 2^b)` and bucket 0 is exactly zero.
    pub buckets: Vec<(u32, u64)>,
}

/// A point-in-time materialization of a [`Registry`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Deterministic work counters (sorted by name), including the
    /// process-global deltas (`global.*`, `kernel.words.*`).
    pub work: Vec<(String, u64)>,
    /// Wall-class counters — scheduling artifacts, never asserted on.
    pub wall: Vec<(String, u64)>,
    /// Indexed series, e.g. per-depth node counts.
    pub series: Vec<(String, Class, Vec<u64>)>,
    /// Span duration histograms (µs).
    pub spans: Vec<(String, HistSummary)>,
    /// Free-form notes (kernel dispatch choice, ...).
    pub notes: Vec<(String, String)>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Snapshot {
    /// Value of a work counter, 0 when absent.
    pub fn work_counter(&self, name: &str) -> u64 {
        self.work
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Values of a series, empty when absent.
    pub fn series_values(&self, name: &str) -> &[u64] {
        self.series
            .iter()
            .find(|(n, _, _)| n == name)
            .map_or(&[], |(_, _, v)| v.as_slice())
    }

    /// The deterministic work counters only, as sorted `(name, value)`
    /// pairs — the exact set the thread/kernel invariance tests compare.
    pub fn work_fingerprint(&self) -> Vec<(String, u64)> {
        let mut out = self.work.clone();
        for (name, class, values) in &self.series {
            if *class == Class::Work {
                for (i, v) in values.iter().enumerate() {
                    out.push((format!("{name}[{i}]"), *v));
                }
            }
        }
        out.sort();
        out
    }

    /// Render as a hand-rolled JSON document (`bcc-metrics/v1`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"bcc-metrics/v1\"");
        out.push_str(",\"work\":{");
        for (i, (name, value)) in self.work.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(name), value));
        }
        out.push_str("},\"wall\":{");
        for (i, (name, value)) in self.wall.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(name), value));
        }
        out.push_str("},\"series\":{");
        for (i, (name, class, values)) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"class\":\"{}\",\"values\":[",
                json_escape(name),
                class.label()
            ));
            for (j, v) in values.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&v.to_string());
            }
            out.push_str("]}");
        }
        out.push_str("},\"spans\":{");
        for (i, (name, h)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"total_us\":{},\"max_us\":{},\"buckets\":[",
                json_escape(name),
                h.count,
                h.total,
                h.max
            ));
            for (j, (b, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{b},{c}]"));
            }
            out.push_str("]}");
        }
        out.push_str("},\"notes\":{");
        for (i, (name, value)) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":\"{}\"",
                json_escape(name),
                json_escape(value)
            ));
        }
        out.push_str("}}");
        out
    }

    /// Render as an aligned text table (the `--report` mode).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let width = self
            .work
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.wall.iter().map(|(n, _)| n.len()))
            .chain(self.spans.iter().map(|(n, _)| n.len()))
            .chain(self.notes.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        if !self.work.is_empty() {
            out.push_str("work (deterministic):\n");
            for (name, value) in &self.work {
                out.push_str(&format!("  {name:<width$}  {value}\n"));
            }
        }
        if !self.wall.is_empty() {
            out.push_str("wall (scheduling-dependent):\n");
            for (name, value) in &self.wall {
                out.push_str(&format!("  {name:<width$}  {value}\n"));
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for (name, h) in &self.spans {
                out.push_str(&format!(
                    "  {name:<width$}  count {:<8} total {:.3}ms  max {:.3}ms\n",
                    h.count,
                    h.total as f64 / 1_000.0,
                    h.max as f64 / 1_000.0
                ));
            }
        }
        for (name, class, values) in &self.series {
            out.push_str(&format!("series {name} ({}): {values:?}\n", class.label()));
        }
        if !self.notes.is_empty() {
            out.push_str("notes:\n");
            for (name, value) in &self.notes {
                out.push_str(&format!("  {name:<width$}  {value}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_series_hists_and_notes_round_trip() {
        let r = Registry::new();
        r.add("walk.nodes", Class::Work, 5);
        r.add("walk.nodes", Class::Work, 7);
        r.add("walk.chunks", Class::Wall, 3);
        r.add_at("walk.nodes_by_depth", Class::Work, 2, 4);
        r.add_at("walk.nodes_by_depth", Class::Work, 0, 1);
        r.record("lab.point", Class::Wall, 900);
        r.record("lab.point", Class::Wall, 0);
        r.note("kernel.dispatch", "scalar");
        let s = r.snapshot();
        assert_eq!(s.work_counter("walk.nodes"), 12);
        assert_eq!(s.series_values("walk.nodes_by_depth"), &[1, 0, 4]);
        assert_eq!(s.wall, vec![("walk.chunks".to_string(), 3)]);
        let (_, hist) = &s.spans[0];
        assert_eq!((hist.count, hist.total, hist.max), (2, 900, 900));
        // 900 has bit length 10 (512..1024); the zero lands in bucket 0.
        assert_eq!(hist.buckets, vec![(0, 1), (10, 1)]);
        assert_eq!(s.notes, vec![("kernel.dispatch".into(), "scalar".into())]);
        let json = s.to_json();
        assert!(json.starts_with("{\"schema\":\"bcc-metrics/v1\""));
        assert!(json.contains("\"walk.nodes\":12"));
        assert!(json.contains("\"values\":[1,0,4]"));
        let text = s.render_text();
        assert!(text.contains("walk.nodes"));
        assert!(text.contains("kernel.dispatch"));
    }

    #[test]
    fn install_scopes_nest_and_pop() {
        assert!(current().is_none());
        let outer = Registry::new();
        let _g0 = outer.install();
        outer.add("outer.mark", Class::Work, 1);
        {
            let inner = Registry::new();
            let _g1 = inner.install();
            current().expect("inner installed").add("x", Class::Work, 1);
            assert_eq!(inner.snapshot().work_counter("x"), 1);
        }
        current()
            .expect("outer restored")
            .add("outer.mark", Class::Work, 1);
        assert_eq!(outer.snapshot().work_counter("outer.mark"), 2);
        drop(_g0);
        assert!(current().is_none());
    }

    #[test]
    fn global_deltas_are_relative_to_registry_creation() {
        add_keys_sorted(100);
        let r = Registry::new();
        add_keys_sorted(42);
        add_keys_merged(7);
        assert_eq!(r.snapshot().work_counter("global.keys_sorted"), 42);
        assert_eq!(r.snapshot().work_counter("global.keys_merged"), 7);
    }

    #[test]
    fn kernel_words_only_count_under_a_scope() {
        // No scope installed by this thread — but another test may have
        // one active concurrently, so only assert the scoped direction.
        let r = Registry::new();
        let _g = r.install();
        add_kernel_words(KernelFamily::Boolean, 11);
        add_kernel_words(KernelFamily::Bytes, 5);
        let s = r.snapshot();
        assert!(s.work_counter("kernel.words.boolean") >= 11);
        assert!(s.work_counter("kernel.words.bytes") >= 5);
    }

    #[test]
    fn work_fingerprint_flattens_series() {
        let r = Registry::new();
        r.add("a", Class::Work, 1);
        r.add_at("s", Class::Work, 1, 9);
        let fp = r.snapshot().work_fingerprint();
        assert!(fp.contains(&("a".to_string(), 1)));
        assert!(fp.contains(&("s[0]".to_string(), 0)));
        assert!(fp.contains(&("s[1]".to_string(), 9)));
    }
}
