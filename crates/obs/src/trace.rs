//! Chrome-trace-event sink behind `BCC_TRACE=<path>`.
//!
//! Spans buffer complete events (`"ph":"X"`) in memory; [`flush`]
//! rewrites the target file with everything recorded so far, so a
//! caller can flush after every sweep and still end with one valid
//! JSON document. Open the file in `chrome://tracing` or
//! <https://ui.perfetto.dev>.
//!
//! The sink is process-global: either the `BCC_TRACE` environment
//! variable (read once, at first use) or an [`install`] call names the
//! output path; once a path is set it cannot be redirected (spans may
//! already reference it from other threads), but a process whose
//! environment left tracing off can still [`install`] later.
//!
//! Timestamps are µs since a process-wide epoch taken at first use;
//! both `ts` and the span's end are floored to the same µs clock, so
//! per-thread RAII nesting survives integer truncation exactly — the
//! property `crates/obs/tests/trace_check.rs` validates.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

struct Event {
    name: &'static str,
    ts_us: u64,
    dur_us: u64,
    tid: u64,
}

static ENV_INIT: Once = Once::new();
static ENABLED: AtomicBool = AtomicBool::new(false);
static PATH: Mutex<Option<PathBuf>> = Mutex::new(None);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static EVENTS: Mutex<Vec<Event>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Reads `BCC_TRACE` exactly once for the process's lifetime.
fn ensure_env() {
    ENV_INIT.call_once(|| {
        if let Some(p) = std::env::var_os("BCC_TRACE") {
            if !p.is_empty() {
                *PATH.lock().unwrap_or_else(|e| e.into_inner()) = Some(PathBuf::from(p));
                ENABLED.store(true, Ordering::Release);
            }
        }
    });
}

fn path() -> Option<PathBuf> {
    ensure_env();
    PATH.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Programmatically enable tracing to `path` (the in-process
/// alternative to setting `BCC_TRACE` before launch). Returns `false`
/// if a sink path is already set — by the environment or an earlier
/// call — which cannot be redirected.
pub fn install(path: &Path) -> bool {
    ensure_env();
    let mut guard = PATH.lock().unwrap_or_else(|e| e.into_inner());
    if guard.is_some() {
        return false;
    }
    *guard = Some(path.to_path_buf());
    ENABLED.store(true, Ordering::Release);
    true
}

/// Is the trace sink enabled? (Reads the `BCC_TRACE` decision on first
/// call; a later [`install`] can still turn tracing on.)
#[inline]
pub fn enabled() -> bool {
    ensure_env();
    ENABLED.load(Ordering::Acquire)
}

/// Record one complete span event. Called by `Span::drop`; `start` and
/// `end` are floored against the shared epoch so nesting survives
/// truncation.
pub(crate) fn record(name: &'static str, start: Instant, end: Instant) {
    if !enabled() {
        return;
    }
    let epoch = *EPOCH.get_or_init(Instant::now);
    let ts_us = start.saturating_duration_since(epoch).as_micros() as u64;
    let end_us = end.saturating_duration_since(epoch).as_micros() as u64;
    let tid = TID.with(|t| *t);
    let mut events = EVENTS.lock().unwrap_or_else(|e| e.into_inner());
    events.push(Event {
        name,
        ts_us,
        dur_us: end_us.saturating_sub(ts_us),
        tid,
    });
}

/// Number of events buffered so far (0 when disabled).
pub fn event_count() -> usize {
    EVENTS.lock().unwrap_or_else(|e| e.into_inner()).len()
}

/// Rewrite the trace file with every event recorded so far. Returns
/// the path written, or `None` when tracing is disabled. Safe to call
/// repeatedly; the last flush wins with a superset of earlier ones.
pub fn flush() -> Option<std::io::Result<PathBuf>> {
    let path = path()?;
    let events = EVENTS.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"bcc\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
            e.name, e.ts_us, e.dur_us, e.tid
        ));
    }
    out.push_str("]}");
    drop(events);
    Some(std::fs::write(&path, out).map(|()| path))
}
