//! Merging per-shard metrics snapshots back into one report.
//!
//! A sharded sweep writes one `metrics.json` per shard directory; the
//! coordinator's merge step folds them into a single [`Snapshot`] with
//! the same schema. The fold is sound because every work metric is a
//! commutative integer sum by construction (the property the
//! thread/kernel invariance tests already rely on): summing per-shard
//! work counters yields exactly the counters a single-process sweep of
//! the same grid records, so the merged observability report is as
//! placement-independent as the records themselves. Wall-class values
//! merge by the same rules but stay scheduling-dependent, as always.
//!
//! [`Snapshot::from_json`] parses the crate's own `bcc-metrics/v1`
//! output (hand-rolled, like the writer). It accepts keys in any order
//! and ignores unknown top-level keys, so the format can grow without
//! breaking shard merges mid-migration.

use std::collections::BTreeMap;

use crate::{Class, HistSummary, Snapshot};

impl Snapshot {
    /// Parses a `bcc-metrics/v1` document produced by
    /// [`Snapshot::to_json`]. `None` on malformed input or a foreign
    /// schema tag.
    pub fn from_json(text: &str) -> Option<Snapshot> {
        let mut cur = Cursor::new(text);
        let mut schema_ok = false;
        let mut snapshot = Snapshot {
            work: Vec::new(),
            wall: Vec::new(),
            series: Vec::new(),
            spans: Vec::new(),
            notes: Vec::new(),
        };
        cur.expect(b'{')?;
        if cur.peek() == Some(b'}') {
            return None; // an empty object carries no schema tag
        }
        loop {
            let key = cur.string()?;
            cur.expect(b':')?;
            match key.as_str() {
                "schema" => {
                    schema_ok = cur.string()? == "bcc-metrics/v1";
                }
                "work" => snapshot.work = cur.counter_map()?,
                "wall" => snapshot.wall = cur.counter_map()?,
                "series" => snapshot.series = cur.series_map()?,
                "spans" => snapshot.spans = cur.span_map()?,
                "notes" => snapshot.notes = cur.note_map()?,
                _ => cur.skip_value()?,
            }
            match cur.next()? {
                b',' => continue,
                b'}' => break,
                _ => return None,
            }
        }
        if !schema_ok {
            return None;
        }
        Some(snapshot)
    }
}

/// Folds snapshots into one: counters and series sum name-wise (work
/// and wall alike), histograms merge their counts/totals/buckets and
/// take the max of maxes, and notes keep the common value — or, when
/// shards disagree, the distinct values sorted and `|`-joined, so a
/// mixed-kernel merge is visible instead of silently picking a winner.
/// The fold is commutative and associative, so shard order cannot
/// change a byte of the merged report.
pub fn merge_snapshots(parts: &[Snapshot]) -> Snapshot {
    let mut work: BTreeMap<String, u64> = BTreeMap::new();
    let mut wall: BTreeMap<String, u64> = BTreeMap::new();
    let mut series: BTreeMap<String, (Class, Vec<u64>)> = BTreeMap::new();
    let mut spans: BTreeMap<String, HistSummary> = BTreeMap::new();
    let mut notes: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for part in parts {
        for (name, value) in &part.work {
            *work.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &part.wall {
            *wall.entry(name.clone()).or_insert(0) += value;
        }
        for (name, class, values) in &part.series {
            let slot = series
                .entry(name.clone())
                .or_insert_with(|| (*class, Vec::new()));
            debug_assert_eq!(slot.0, *class, "series class mismatch for {name}");
            if slot.1.len() < values.len() {
                slot.1.resize(values.len(), 0);
            }
            for (acc, v) in slot.1.iter_mut().zip(values) {
                *acc += v;
            }
        }
        for (name, h) in &part.spans {
            let slot = spans.entry(name.clone()).or_insert_with(|| HistSummary {
                count: 0,
                total: 0,
                max: 0,
                buckets: Vec::new(),
            });
            slot.count += h.count;
            slot.total = slot.total.saturating_add(h.total);
            slot.max = slot.max.max(h.max);
            let mut buckets: BTreeMap<u32, u64> = slot.buckets.iter().copied().collect();
            for &(b, c) in &h.buckets {
                *buckets.entry(b).or_insert(0) += c;
            }
            slot.buckets = buckets.into_iter().collect();
        }
        for (name, value) in &part.notes {
            let seen = notes.entry(name.clone()).or_default();
            if !seen.contains(value) {
                seen.push(value.clone());
            }
        }
    }
    Snapshot {
        work: work.into_iter().collect(),
        wall: wall.into_iter().collect(),
        series: series
            .into_iter()
            .map(|(name, (class, values))| (name, class, values))
            .collect(),
        spans: spans.into_iter().collect(),
        notes: notes
            .into_iter()
            .map(|(name, mut values)| {
                values.sort();
                (name, values.join("|"))
            })
            .collect(),
    }
}

/// A byte cursor over the JSON text. Whitespace-tolerant even though
/// the writer emits none, so hand-prettified files still parse.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Cursor<'a> {
        Cursor {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, want: u8) -> Option<()> {
        (self.next()? == want).then_some(())
    }

    /// Parses a `"..."` string literal, handling the writer's escapes.
    fn string(&mut self) -> Option<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match *self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match *self.bytes.get(self.pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).ok()?);
                }
            }
        }
    }

    fn u64(&mut self) -> Option<u64> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }

    /// `{"name":N,...}` → sorted `(name, value)` pairs.
    fn counter_map(&mut self) -> Option<Vec<(String, u64)>> {
        let mut out = Vec::new();
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(out);
        }
        loop {
            let name = self.string()?;
            self.expect(b':')?;
            out.push((name, self.u64()?));
            match self.next()? {
                b',' => continue,
                b'}' => break,
                _ => return None,
            }
        }
        Some(out)
    }

    /// `{"name":{"class":"work","values":[..]},...}`.
    fn series_map(&mut self) -> Option<Vec<(String, Class, Vec<u64>)>> {
        let mut out = Vec::new();
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(out);
        }
        loop {
            let name = self.string()?;
            self.expect(b':')?;
            self.expect(b'{')?;
            let key = self.string()?;
            (key == "class").then_some(())?;
            self.expect(b':')?;
            let class = match self.string()?.as_str() {
                "work" => Class::Work,
                "wall" => Class::Wall,
                _ => return None,
            };
            self.expect(b',')?;
            let key = self.string()?;
            (key == "values").then_some(())?;
            self.expect(b':')?;
            let values = self.u64_array()?;
            self.expect(b'}')?;
            out.push((name, class, values));
            match self.next()? {
                b',' => continue,
                b'}' => break,
                _ => return None,
            }
        }
        Some(out)
    }

    /// `{"name":{"count":N,"total_us":N,"max_us":N,"buckets":[[b,c],..]},...}`.
    fn span_map(&mut self) -> Option<Vec<(String, HistSummary)>> {
        let mut out = Vec::new();
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(out);
        }
        loop {
            let name = self.string()?;
            self.expect(b':')?;
            self.expect(b'{')?;
            let mut h = HistSummary {
                count: 0,
                total: 0,
                max: 0,
                buckets: Vec::new(),
            };
            loop {
                let key = self.string()?;
                self.expect(b':')?;
                match key.as_str() {
                    "count" => h.count = self.u64()?,
                    "total_us" => h.total = self.u64()?,
                    "max_us" => h.max = self.u64()?,
                    "buckets" => {
                        self.expect(b'[')?;
                        if self.peek() == Some(b']') {
                            self.pos += 1;
                        } else {
                            loop {
                                self.expect(b'[')?;
                                let b = self.u64()? as u32;
                                self.expect(b',')?;
                                let c = self.u64()?;
                                self.expect(b']')?;
                                h.buckets.push((b, c));
                                match self.next()? {
                                    b',' => continue,
                                    b']' => break,
                                    _ => return None,
                                }
                            }
                        }
                    }
                    _ => return None,
                }
                match self.next()? {
                    b',' => continue,
                    b'}' => break,
                    _ => return None,
                }
            }
            out.push((name, h));
            match self.next()? {
                b',' => continue,
                b'}' => break,
                _ => return None,
            }
        }
        Some(out)
    }

    /// `{"name":"value",...}`.
    fn note_map(&mut self) -> Option<Vec<(String, String)>> {
        let mut out = Vec::new();
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(out);
        }
        loop {
            let name = self.string()?;
            self.expect(b':')?;
            out.push((name, self.string()?));
            match self.next()? {
                b',' => continue,
                b'}' => break,
                _ => return None,
            }
        }
        Some(out)
    }

    fn u64_array(&mut self) -> Option<Vec<u64>> {
        let mut out = Vec::new();
        self.expect(b'[')?;
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Some(out);
        }
        loop {
            out.push(self.u64()?);
            match self.next()? {
                b',' => continue,
                b']' => break,
                _ => return None,
            }
        }
        Some(out)
    }

    /// Skips one value of any shape (future top-level keys).
    fn skip_value(&mut self) -> Option<()> {
        match self.peek()? {
            b'"' => {
                self.string()?;
            }
            b'{' | b'[' => {
                let mut depth = 0usize;
                loop {
                    match self.next()? {
                        b'{' | b'[' => depth += 1,
                        b'}' | b']' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        b'"' => {
                            self.pos -= 1;
                            self.string()?;
                        }
                        _ => {}
                    }
                }
            }
            _ => {
                self.u64()?;
            }
        }
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.add("lab.points_computed", Class::Work, 7);
        r.add("walk.chunks", Class::Wall, 3);
        r.add_at("walk.nodes_by_depth", Class::Work, 2, 4);
        r.record("lab.point", Class::Wall, 900);
        r.record("lab.point", Class::Wall, 0);
        r.note("kernel.dispatch", "scalar");
        r.snapshot()
    }

    #[test]
    fn json_round_trips_exactly() {
        let s = sample();
        let parsed = Snapshot::from_json(&s.to_json()).expect("own output parses");
        assert_eq!(parsed, s);
        // And the re-rendered JSON is byte-identical.
        assert_eq!(parsed.to_json(), s.to_json());
    }

    #[test]
    fn foreign_or_malformed_documents_are_refused() {
        assert!(Snapshot::from_json("{}").is_none());
        assert!(Snapshot::from_json("{\"schema\":\"other/v1\",\"work\":{}}").is_none());
        assert!(Snapshot::from_json("not json").is_none());
        let json = sample().to_json();
        assert!(Snapshot::from_json(&json[..json.len() - 2]).is_none());
    }

    #[test]
    fn unknown_top_level_keys_are_skipped() {
        // One snapshot only: the global.* deltas move when other tests
        // in this binary count concurrently, so two sample() calls are
        // not comparable.
        let s = sample();
        let json = s.to_json();
        let extended = format!(
            "{},\"future\":{{\"nested\":[1,2,{{\"x\":\"y\"}}]}}}}",
            &json[..json.len() - 1]
        );
        let parsed = Snapshot::from_json(&extended).expect("extended document parses");
        assert_eq!(parsed, s);
    }

    #[test]
    fn merge_sums_counters_and_series() {
        let a = Registry::new();
        a.add("x", Class::Work, 3);
        a.add_at("s", Class::Work, 0, 1);
        let b = Registry::new();
        b.add("x", Class::Work, 4);
        b.add("y", Class::Work, 1);
        b.add_at("s", Class::Work, 2, 5);
        let merged = merge_snapshots(&[a.snapshot(), b.snapshot()]);
        assert_eq!(merged.work_counter("x"), 7);
        assert_eq!(merged.work_counter("y"), 1);
        assert_eq!(merged.series_values("s"), &[1, 0, 5]);
    }

    #[test]
    fn merge_is_commutative() {
        let a = sample();
        let mut b = sample();
        b.notes = vec![("kernel.dispatch".into(), "avx2".into())];
        let ab = merge_snapshots(&[a.clone(), b.clone()]);
        let ba = merge_snapshots(&[b, a]);
        assert_eq!(ab, ba);
        // Disagreeing notes surface both values, sorted.
        assert_eq!(
            ab.notes,
            vec![("kernel.dispatch".into(), "avx2|scalar".into())]
        );
    }

    #[test]
    fn merge_combines_histograms() {
        let a = Registry::new();
        a.record("lab.point", Class::Wall, 900);
        let b = Registry::new();
        b.record("lab.point", Class::Wall, 0);
        b.record("lab.point", Class::Wall, 1000);
        let merged = merge_snapshots(&[a.snapshot(), b.snapshot()]);
        let (_, h) = &merged.spans[0];
        assert_eq!((h.count, h.total, h.max), (3, 1900, 1000));
        assert_eq!(h.buckets, vec![(0, 1), (10, 2)]);
    }

    #[test]
    fn merged_snapshot_round_trips_through_json() {
        let s = sample();
        let merged = merge_snapshots(&[s.clone(), s]);
        let parsed = Snapshot::from_json(&merged.to_json()).expect("parses");
        assert_eq!(parsed, merged);
    }
}
