//! Hand-rolled Chrome-trace validator.
//!
//! Three consumers:
//! - unit tests on literal strings pin the validator itself,
//! - `emitted_trace_parses_and_nests` generates a real trace through
//!   the span API (programmatic [`bcc_obs::trace::install`]) and
//!   validates it end to end,
//! - `validates_external_file` re-checks a trace produced by another
//!   process when `BCC_TRACE_CHECK=<path>` is set — the CI
//!   `trace-smoke` step points it at the file `lab_sweep --smoke`
//!   wrote under `BCC_TRACE`.

use std::collections::BTreeMap;

/// One parsed trace event.
#[derive(Debug, Clone)]
struct Event {
    name: String,
    ph: String,
    ts: u64,
    dur: u64,
    tid: u64,
}

/// Minimal JSON scanner for the Chrome trace shape: a top-level object
/// holding a `traceEvents` array of flat objects with string / integer
/// fields. Returns `Err` with a position-tagged message on anything
/// malformed.
fn parse_trace(text: &str) -> Result<Vec<Event>, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && (bytes[*pos] as char).is_ascii_whitespace() {
            *pos += 1;
        }
    }
    fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(bytes, pos);
        if *pos < bytes.len() && bytes[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, pos))
        }
    }
    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        while *pos < bytes.len() {
            match bytes[*pos] {
                b'"' => {
                    *pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *pos += 1;
                    let esc = *bytes.get(*pos).ok_or("truncated escape")?;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'n' => '\n',
                        b'r' => '\r',
                        b't' => '\t',
                        b'u' => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            *pos += 4;
                            char::from_u32(code).ok_or("bad \\u code point")?
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    });
                    *pos += 1;
                }
                b => {
                    // Multi-byte UTF-8 continuation bytes pass through.
                    out.push_str(
                        std::str::from_utf8(&bytes[*pos..*pos + utf8_len(b)])
                            .map_err(|e| e.to_string())?,
                    );
                    *pos += utf8_len(b);
                }
            }
        }
        Err("unterminated string".into())
    }
    fn utf8_len(b: u8) -> usize {
        match b {
            0x00..=0x7F => 1,
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            _ => 4,
        }
    }
    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
        skip_ws(bytes, pos);
        let start = *pos;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if start == *pos {
            return Err(format!("expected number at byte {start}"));
        }
        std::str::from_utf8(&bytes[start..*pos])
            .unwrap()
            .parse::<u64>()
            .map_err(|e| e.to_string())
    }

    expect(bytes, &mut pos, b'{')?;
    // Scan top-level keys until traceEvents; tolerate (and skip) other
    // scalar-valued keys so hand-written fixtures can carry metadata.
    loop {
        skip_ws(bytes, &mut pos);
        let key = parse_string(bytes, &mut pos)?;
        expect(bytes, &mut pos, b':')?;
        if key == "traceEvents" {
            break;
        }
        skip_ws(bytes, &mut pos);
        match bytes.get(pos) {
            Some(b'"') => {
                parse_string(bytes, &mut pos)?;
            }
            Some(b'0'..=b'9') => {
                parse_number(bytes, &mut pos)?;
            }
            _ => return Err(format!("unsupported value for key {key}")),
        }
        expect(bytes, &mut pos, b',')?;
    }

    expect(bytes, &mut pos, b'[')?;
    let mut events = Vec::new();
    skip_ws(bytes, &mut pos);
    if bytes.get(pos) == Some(&b']') {
        pos += 1;
    } else {
        loop {
            expect(bytes, &mut pos, b'{')?;
            let mut strings: BTreeMap<String, String> = BTreeMap::new();
            let mut numbers: BTreeMap<String, u64> = BTreeMap::new();
            loop {
                skip_ws(bytes, &mut pos);
                let key = parse_string(bytes, &mut pos)?;
                expect(bytes, &mut pos, b':')?;
                skip_ws(bytes, &mut pos);
                match bytes.get(pos) {
                    Some(b'"') => {
                        let v = parse_string(bytes, &mut pos)?;
                        strings.insert(key, v);
                    }
                    _ => {
                        let v = parse_number(bytes, &mut pos)?;
                        numbers.insert(key, v);
                    }
                }
                skip_ws(bytes, &mut pos);
                match bytes.get(pos) {
                    Some(b',') => pos += 1,
                    Some(b'}') => {
                        pos += 1;
                        break;
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
            events.push(Event {
                name: strings.remove("name").ok_or("event missing name")?,
                ph: strings.remove("ph").ok_or("event missing ph")?,
                ts: *numbers.get("ts").ok_or("event missing ts")?,
                dur: *numbers.get("dur").ok_or("event missing dur")?,
                tid: *numbers.get("tid").ok_or("event missing tid")?,
            });
            skip_ws(bytes, &mut pos);
            match bytes.get(pos) {
                Some(b',') => pos += 1,
                Some(b']') => {
                    pos += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }
    expect(bytes, &mut pos, b'}')?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(events)
}

/// Validate that complete events nest properly per thread: sorted by
/// (ts asc, dur desc), every event either starts after the enclosing
/// span ended or ends within it. RAII span guards guarantee this by
/// construction; a violation means the writer (or a clock) is broken.
fn check_nesting(events: &[Event]) -> Result<(), String> {
    let mut by_tid: BTreeMap<u64, Vec<&Event>> = BTreeMap::new();
    for e in events {
        if e.ph != "X" {
            return Err(format!("event {} has ph {:?}, want \"X\"", e.name, e.ph));
        }
        by_tid.entry(e.tid).or_default().push(e);
    }
    for (tid, mut evs) in by_tid {
        evs.sort_by_key(|e| (e.ts, std::cmp::Reverse(e.dur)));
        let mut stack: Vec<&Event> = Vec::new();
        for e in evs {
            while let Some(top) = stack.last() {
                if top.ts + top.dur <= e.ts {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = stack.last() {
                let (end, top_end) = (e.ts + e.dur, top.ts + top.dur);
                if end > top_end {
                    return Err(format!(
                        "tid {tid}: span {:?} [{}..{}] overlaps enclosing {:?} [{}..{}]",
                        e.name, e.ts, end, top.name, top.ts, top_end
                    ));
                }
            }
            stack.push(e);
        }
    }
    Ok(())
}

fn validate(text: &str) -> Result<Vec<Event>, String> {
    let events = parse_trace(text)?;
    check_nesting(&events)?;
    Ok(events)
}

#[test]
fn validator_accepts_nested_and_rejects_overlap() {
    let good = r#"{"displayTimeUnit":"ms","traceEvents":[
        {"name":"outer","cat":"bcc","ph":"X","ts":0,"dur":100,"pid":1,"tid":1},
        {"name":"inner","cat":"bcc","ph":"X","ts":10,"dur":20,"pid":1,"tid":1},
        {"name":"sibling","cat":"bcc","ph":"X","ts":30,"dur":70,"pid":1,"tid":1},
        {"name":"other-thread","cat":"bcc","ph":"X","ts":5,"dur":500,"pid":1,"tid":2}
    ]}"#;
    let events = validate(good).expect("well-nested trace validates");
    assert_eq!(events.len(), 4);

    let overlapping = r#"{"traceEvents":[
        {"name":"a","ph":"X","ts":0,"dur":10,"tid":1},
        {"name":"b","ph":"X","ts":5,"dur":10,"tid":1}
    ]}"#;
    let err = validate(overlapping).expect_err("partial overlap must fail");
    assert!(err.contains("overlaps"), "got: {err}");

    assert!(validate("{\"traceEvents\":[]}")
        .expect("empty ok")
        .is_empty());
    assert!(validate("{\"traceEvents\":[{\"name\":\"x\"}]}").is_err());
    assert!(validate("not json").is_err());
}

#[test]
fn emitted_trace_parses_and_nests() {
    let path = std::env::temp_dir().join(format!("bcc-trace-selftest-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    assert!(
        bcc_obs::trace::install(&path),
        "this test must be the first trace-sink user in the binary"
    );

    {
        let _outer = bcc_obs::span("selftest.outer");
        {
            let _inner = bcc_obs::span("selftest.inner");
            std::hint::black_box((0..1000).sum::<u64>());
        }
        let _tail = bcc_obs::span("selftest.tail");
    }
    std::thread::spawn(|| {
        let _worker = bcc_obs::span("selftest.worker");
        let _child = bcc_obs::span("selftest.worker_child");
        std::hint::black_box((0..1000).product::<u64>());
    })
    .join()
    .unwrap();

    bcc_obs::trace::flush()
        .expect("sink enabled")
        .expect("flush writes");
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let events = validate(&text).expect("emitted trace is valid and nested");
    assert_eq!(events.len(), 5, "five spans emitted: {events:?}");
    let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
    for want in [
        "selftest.outer",
        "selftest.inner",
        "selftest.tail",
        "selftest.worker",
        "selftest.worker_child",
    ] {
        assert!(names.contains(&want), "{want} missing from {names:?}");
    }
    // The spawned thread's spans carry a distinct tid.
    let main_tid = events
        .iter()
        .find(|e| e.name == "selftest.outer")
        .unwrap()
        .tid;
    let worker_tid = events
        .iter()
        .find(|e| e.name == "selftest.worker")
        .unwrap()
        .tid;
    assert_ne!(main_tid, worker_tid);
    let _ = std::fs::remove_file(&path);
}

/// CI hook: when `BCC_TRACE_CHECK` names a file (the trace another
/// process wrote under `BCC_TRACE`), parse and nesting-check it.
#[test]
fn validates_external_file() {
    let Some(path) = std::env::var_os("BCC_TRACE_CHECK") else {
        eprintln!("SKIP validates_external_file: BCC_TRACE_CHECK not set");
        return;
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.to_string_lossy()));
    let events = validate(&text).expect("external trace is valid and nested");
    assert!(
        !events.is_empty(),
        "external trace has no events — spans not wired?"
    );
    println!(
        "validated {} events across {} threads from {}",
        events.len(),
        events
            .iter()
            .map(|e| e.tid)
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        path.to_string_lossy()
    );
}
