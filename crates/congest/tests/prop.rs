//! Property-based tests for the congested-clique model.

use bcc_congest::{is_consistent, run_turn_protocol, FnProtocol, Model, Network, TurnTranscript};
use bcc_f2::BitVec;
use proptest::prelude::*;

proptest! {
    #[test]
    fn transcript_push_then_read(bits in proptest::collection::vec(any::<bool>(), 0..64)) {
        let mut t = TurnTranscript::empty();
        for &b in &bits {
            t.push(b);
        }
        prop_assert_eq!(t.len() as usize, bits.len());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(t.bit(i as u32), b);
        }
        // Round-trip through the packed form.
        let back = TurnTranscript::from_bits(t.as_u64(), t.len());
        prop_assert_eq!(back, t);
    }

    #[test]
    fn prefix_is_idempotent(bits in proptest::collection::vec(any::<bool>(), 0..40), cut in 0u32..40) {
        let mut t = TurnTranscript::empty();
        for &b in &bits {
            t.push(b);
        }
        let cut = cut.min(t.len());
        let p = t.prefix(cut);
        prop_assert_eq!(p.prefix(cut), p);
        for i in 0..cut {
            prop_assert_eq!(p.bit(i), t.bit(i));
        }
    }

    #[test]
    fn real_input_is_always_consistent(
        inputs in proptest::collection::vec(0u64..16, 3),
        seed in any::<u64>(),
    ) {
        // For any (seeded, deterministic) protocol, the actual inputs are
        // consistent with the transcript they generated.
        let p = FnProtocol::new(3, 4, 9, move |proc, input, tr| {
            let h = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(input)
                .wrapping_add((proc as u64) << 32)
                .wrapping_add(u64::from(tr.len()) << 40)
                .wrapping_add(tr.as_u64());
            (h >> 17) & 1 == 1
        });
        let t = run_turn_protocol(&p, &inputs);
        for (proc, &input) in inputs.iter().enumerate() {
            prop_assert!(is_consistent(&p, proc, input, &t));
        }
    }

    #[test]
    fn consistent_inputs_reproduce_the_transcript(
        inputs in proptest::collection::vec(0u64..8, 2),
        alt in 0u64..8,
    ) {
        // If `alt` is consistent for processor 0, swapping it in yields
        // the same transcript (the defining property of D_p).
        let p = FnProtocol::new(2, 3, 6, |_, input, tr| {
            (input >> (tr.len() / 2).min(2)) & 1 == 1
        });
        let t = run_turn_protocol(&p, &inputs);
        if is_consistent(&p, 0, alt, &t) {
            let t2 = run_turn_protocol(&p, &[alt, inputs[1]]);
            prop_assert_eq!(t2, t);
        }
    }

    #[test]
    fn broadcast_bits_roundtrip(
        payload_len in 1usize..40,
        width in 1u32..8,
        n in 1usize..5,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let payloads: Vec<BitVec> = (0..n)
            .map(|_| {
                (0..payload_len).map(|_| rng.gen::<bool>()).collect()
            })
            .collect();
        let mut net = Network::new(Model::new(n, width));
        let rounds = net.broadcast_bits(&payloads);
        prop_assert_eq!(rounds, payload_len.div_ceil(width as usize));
        prop_assert_eq!(net.collect_bits(rounds, payload_len), payloads);
    }

    #[test]
    fn rounds_for_bits_is_exact_ceil(bits in 0usize..1000, width in 1u32..32) {
        let m = Model::new(4, width);
        let r = m.rounds_for_bits(bits);
        prop_assert!(r * width as usize >= bits);
        prop_assert!(r == 0 || ((r - 1) * (width as usize)) < bits);
    }
}
