//! Model parameters for the Broadcast Congested Clique.

/// A `BCAST(b)` Broadcast Congested Clique with `n` processors.
///
/// `b` is the per-round message width in bits. The paper's two standard
/// settings are [`Model::bcast1`] and [`Model::bcast_log`] (footnote 2:
/// results in the two transfer with a `log n` factor in the round count).
///
/// # Example
///
/// ```
/// use bcc_congest::Model;
///
/// let m = Model::bcast_log(1024);
/// assert_eq!(m.n(), 1024);
/// assert_eq!(m.width_bits(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Model {
    n: usize,
    width_bits: u32,
}

impl Model {
    /// A `BCAST(b)` model with `n` processors and `b = width_bits`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `width_bits == 0`, or `width_bits > 63`.
    pub fn new(n: usize, width_bits: u32) -> Self {
        assert!(n > 0, "need at least one processor");
        assert!(
            (1..=63).contains(&width_bits),
            "message width must be in 1..=63 bits"
        );
        Model { n, width_bits }
    }

    /// The single-bit model `BCAST(1)` the paper's lower bounds target.
    pub fn bcast1(n: usize) -> Self {
        Model::new(n, 1)
    }

    /// The `BCAST(log n)` model: width `⌈log₂ n⌉` (at least 1).
    pub fn bcast_log(n: usize) -> Self {
        let w = usize::BITS - n.saturating_sub(1).leading_zeros();
        Model::new(n, w.max(1))
    }

    /// The number of processors.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The message width `b` in bits.
    pub fn width_bits(&self) -> u32 {
        self.width_bits
    }

    /// The number of distinct messages per broadcast, `2^b`.
    pub fn alphabet_size(&self) -> u64 {
        1u64 << self.width_bits
    }

    /// Whether `value` fits in one message.
    pub fn fits(&self, value: u64) -> bool {
        value < self.alphabet_size()
    }

    /// Rounds needed to ship `payload_bits` bits from one processor,
    /// `⌈payload_bits / b⌉`.
    pub fn rounds_for_bits(&self, payload_bits: usize) -> usize {
        payload_bits.div_ceil(self.width_bits as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bcast1_width() {
        let m = Model::bcast1(10);
        assert_eq!(m.width_bits(), 1);
        assert_eq!(m.alphabet_size(), 2);
        assert!(m.fits(1));
        assert!(!m.fits(2));
    }

    #[test]
    fn bcast_log_width() {
        assert_eq!(Model::bcast_log(2).width_bits(), 1);
        assert_eq!(Model::bcast_log(3).width_bits(), 2);
        assert_eq!(Model::bcast_log(1024).width_bits(), 10);
        assert_eq!(Model::bcast_log(1025).width_bits(), 11);
    }

    #[test]
    fn bcast_log_of_one() {
        assert_eq!(Model::bcast_log(1).width_bits(), 1);
    }

    #[test]
    fn rounds_for_bits_ceil() {
        let m = Model::new(8, 10);
        assert_eq!(m.rounds_for_bits(0), 0);
        assert_eq!(m.rounds_for_bits(10), 1);
        assert_eq!(m.rounds_for_bits(11), 2);
        let one = Model::bcast1(8);
        assert_eq!(one.rounds_for_bits(7), 7);
    }

    #[test]
    #[should_panic(expected = "message width")]
    fn zero_width_panics() {
        Model::new(4, 0);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_panics() {
        Model::new(0, 1);
    }
}
