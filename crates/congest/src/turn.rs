//! Turn-based deterministic protocols: the lower-bound side of the model.
//!
//! The paper's relaxation (§1.3, §3): instead of `j` synchronous rounds,
//! run `j·n` *turns*; on turn `t` processor `(t−1) mod n + 1` (0-indexed
//! here: `t mod n`) broadcasts a single bit that may depend on its input
//! and everything broadcast before. Lower bounds in this stronger model
//! imply lower bounds for `BCAST(1)`, and any synchronous protocol embeds
//! into it, so the exact engine in `bcc-core` only ever needs this trait.

use crate::transcript::TurnTranscript;

/// A deterministic turn-based `BCAST(1)` protocol on packed inputs.
///
/// Processor `i`'s behaviour is the pure function
/// [`bit`](TurnProtocol::bit)`(i, input, transcript)` — the paper's
/// `f_i^{|p}(z)`. Inputs are packed `u64`s of [`input_bits`] bits (per
/// processor), which is what makes exhaustive input enumeration feasible.
///
/// [`input_bits`]: TurnProtocol::input_bits
pub trait TurnProtocol {
    /// The number of processors.
    fn n(&self) -> usize;

    /// The number of input bits per processor (`≤ 63`).
    fn input_bits(&self) -> u32;

    /// The total number of turns (the horizon `T = j·n` for `j` rounds).
    fn horizon(&self) -> u32;

    /// Which processor speaks on turn `t`. Default: round-robin
    /// `t mod n`, the paper's schedule.
    fn speaker(&self, t: u32) -> usize {
        t as usize % self.n()
    }

    /// The bit processor `proc` broadcasts given its input and the
    /// transcript so far. Must be a pure function of its arguments.
    fn bit(&self, proc: usize, input: u64, transcript: &TurnTranscript) -> bool;

    /// The number of full rounds, `⌈horizon / n⌉`.
    fn rounds(&self) -> u32 {
        (self.horizon() as usize).div_ceil(self.n()) as u32
    }
}

/// A [`TurnProtocol`] built from a closure, for tests and experiments.
///
/// # Example
///
/// ```
/// use bcc_congest::{FnProtocol, TurnProtocol, TurnTranscript};
///
/// // One round of "broadcast your input's parity".
/// let p = FnProtocol::new(4, 8, 4, |_, input, _| input.count_ones() % 2 == 1);
/// let t = TurnTranscript::empty();
/// assert!(p.bit(0, 0b0111, &t));
/// ```
pub struct FnProtocol<F> {
    n: usize,
    input_bits: u32,
    horizon: u32,
    f: F,
}

impl<F> FnProtocol<F>
where
    F: Fn(usize, u64, &TurnTranscript) -> bool,
{
    /// Wraps `f(proc, input, transcript) → bit` as a protocol.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `input_bits > 63`, or `horizon > 64`.
    pub fn new(n: usize, input_bits: u32, horizon: u32, f: F) -> Self {
        assert!(n > 0, "need at least one processor");
        assert!(input_bits <= 63, "packed inputs hold at most 63 bits");
        assert!(horizon <= 64, "turn transcripts hold at most 64 turns");
        FnProtocol {
            n,
            input_bits,
            horizon,
            f,
        }
    }
}

impl<F> TurnProtocol for FnProtocol<F>
where
    F: Fn(usize, u64, &TurnTranscript) -> bool,
{
    fn n(&self) -> usize {
        self.n
    }

    fn input_bits(&self) -> u32 {
        self.input_bits
    }

    fn horizon(&self) -> u32 {
        self.horizon
    }

    fn bit(&self, proc: usize, input: u64, transcript: &TurnTranscript) -> bool {
        (self.f)(proc, input, transcript)
    }
}

/// Runs a turn protocol on concrete inputs and returns the transcript.
///
/// # Panics
///
/// Panics if `inputs.len() != protocol.n()` or any input exceeds
/// `input_bits` bits.
pub fn run_turn_protocol<P: TurnProtocol + ?Sized>(protocol: &P, inputs: &[u64]) -> TurnTranscript {
    assert_eq!(inputs.len(), protocol.n(), "one input per processor");
    let limit = 1u64 << protocol.input_bits();
    for &x in inputs {
        assert!(
            x < limit,
            "input {x} exceeds {} bits",
            protocol.input_bits()
        );
    }
    let mut transcript = TurnTranscript::empty();
    for t in 0..protocol.horizon() {
        let speaker = protocol.speaker(t);
        let bit = protocol.bit(speaker, inputs[speaker], &transcript);
        transcript.push(bit);
    }
    transcript
}

/// Whether `input` is *consistent* with `transcript` for processor `proc`:
/// replaying the protocol, every bit `proc` actually spoke matches what it
/// would have spoken with this input (the paper's set `D_p^{(t)}`,
/// Claim 2 / Claim 4).
pub fn is_consistent<P: TurnProtocol + ?Sized>(
    protocol: &P,
    proc: usize,
    input: u64,
    transcript: &TurnTranscript,
) -> bool {
    for t in 0..transcript.len() {
        if protocol.speaker(t) == proc {
            let prefix = transcript.prefix(t);
            if protocol.bit(proc, input, &prefix) != transcript.bit(t) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_speaker() {
        let p = FnProtocol::new(3, 4, 9, |_, _, _| false);
        assert_eq!(p.speaker(0), 0);
        assert_eq!(p.speaker(3), 0);
        assert_eq!(p.speaker(5), 2);
        assert_eq!(p.rounds(), 3);
    }

    #[test]
    fn run_records_bits_in_order() {
        // Each processor broadcasts its lowest input bit.
        let p = FnProtocol::new(3, 2, 3, |_, input, _| input & 1 == 1);
        let t = run_turn_protocol(&p, &[1, 0, 3]);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![true, false, true]);
    }

    #[test]
    fn later_turns_see_earlier_bits() {
        // Processor 1 echoes what processor 0 said.
        let p = FnProtocol::new(
            2,
            1,
            2,
            |proc, input, tr| {
                if proc == 0 {
                    input == 1
                } else {
                    tr.bit(0)
                }
            },
        );
        let t = run_turn_protocol(&p, &[1, 0]);
        assert!(t.bit(0) && t.bit(1));
        let t = run_turn_protocol(&p, &[0, 0]);
        assert!(!t.bit(0) && !t.bit(1));
    }

    #[test]
    fn consistency_accepts_real_input() {
        let p = FnProtocol::new(2, 3, 6, |_, input, tr| {
            (input >> (tr.len() / 2) as u64) & 1 == 1
        });
        let inputs = [0b101u64, 0b011];
        let t = run_turn_protocol(&p, &inputs);
        assert!(is_consistent(&p, 0, inputs[0], &t));
        assert!(is_consistent(&p, 1, inputs[1], &t));
    }

    #[test]
    fn consistency_rejects_contradicting_input() {
        // Turn 0: processor 0 broadcasts bit 0 of its input.
        let p = FnProtocol::new(2, 1, 2, |_, input, _| input == 1);
        let t = run_turn_protocol(&p, &[1, 0]);
        assert!(!is_consistent(&p, 0, 0, &t));
        assert!(is_consistent(&p, 0, 1, &t));
    }

    #[test]
    fn consistency_of_silent_processor_is_trivial() {
        // With horizon 1 only processor 0 spoke; any input of processor 1
        // is consistent.
        let p = FnProtocol::new(2, 2, 1, |_, input, _| input & 1 == 1);
        let t = run_turn_protocol(&p, &[0, 3]);
        for x in 0..4u64 {
            assert!(is_consistent(&p, 1, x, &t));
        }
    }

    #[test]
    fn consistent_set_size_halves_per_spoken_bit() {
        // Processor 0 broadcasts input bit t on its t-th turn: after j of
        // its turns the consistent set has 2^{bits-j} members.
        let p = FnProtocol::new(2, 4, 6, |_, input, tr| {
            let my_turns = tr.len() / 2;
            (input >> my_turns) & 1 == 1
        });
        let t = run_turn_protocol(&p, &[0b1010, 0]);
        let count = (0..16u64).filter(|&x| is_consistent(&p, 0, x, &t)).count();
        assert_eq!(count, 2); // 3 bits of processor 0 pinned by 3 turns
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_input_panics() {
        let p = FnProtocol::new(1, 2, 1, |_, _, _| false);
        run_turn_protocol(&p, &[4]);
    }
}
