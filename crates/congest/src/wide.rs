//! Wide-message turn protocols: the `BCAST(w)` generalization.
//!
//! Footnotes 1–2 of the paper: lower bounds proven for `BCAST(1)` extend
//! to `BCAST(log n)` with a `log n` factor in the round count, and all
//! results generalize to logarithmic message sizes. This module makes the
//! wide model a first-class object on the lower-bound side, so the exact
//! engine (in `bcc-core::wide`) can compute transcript distributions with
//! `w`-bit broadcasts and experiments can compare the two models at equal
//! information budgets.

use crate::transcript::TurnTranscript;
use crate::turn::TurnProtocol;

/// A prefix of a turn-based `BCAST(w)` execution: one `w`-bit message per
/// turn, packed into a `u64` (capacity `⌊64/w⌋` turns).
///
/// # Example
///
/// ```
/// use bcc_congest::wide::WideTranscript;
///
/// let mut t = WideTranscript::empty(3);
/// t.push(0b101);
/// t.push(0b010);
/// assert_eq!(t.message(0), 0b101);
/// assert_eq!(t.message(1), 0b010);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WideTranscript {
    bits: u64,
    len: u32,
    width: u32,
}

impl WideTranscript {
    /// The empty transcript for `width`-bit messages.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ width ≤ 16`.
    pub fn empty(width: u32) -> Self {
        assert!((1..=16).contains(&width), "width must be in 1..=16");
        WideTranscript {
            bits: 0,
            len: 0,
            width,
        }
    }

    /// The message width `w`.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The number of messages recorded.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether no message has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The maximum number of messages, `⌊64/width⌋`.
    pub fn capacity(&self) -> u32 {
        64 / self.width
    }

    /// The message broadcast on turn `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= len`.
    pub fn message(&self, t: u32) -> u64 {
        assert!(t < self.len, "turn {t} not yet recorded");
        (self.bits >> (t * self.width)) & ((1u64 << self.width) - 1)
    }

    /// Appends the next message.
    ///
    /// # Panics
    ///
    /// Panics if full or if `message` exceeds the width.
    pub fn push(&mut self, message: u64) {
        assert!(self.len < self.capacity(), "wide transcript full");
        assert!(
            message < (1u64 << self.width),
            "message exceeds {} bits",
            self.width
        );
        self.bits |= message << (self.len * self.width);
        self.len += 1;
    }

    /// This transcript extended by one message.
    pub fn child(&self, message: u64) -> Self {
        let mut c = *self;
        c.push(message);
        c
    }

    /// The first `t` messages.
    ///
    /// # Panics
    ///
    /// Panics if `t > len`.
    pub fn prefix(&self, t: u32) -> Self {
        assert!(t <= self.len, "prefix longer than transcript");
        let kept = t * self.width;
        let mask = if kept == 64 { !0 } else { (1u64 << kept) - 1 };
        WideTranscript {
            bits: self.bits & mask,
            len: t,
            width: self.width,
        }
    }

    /// The packed messages.
    pub fn as_u64(&self) -> u64 {
        self.bits
    }
}

/// A deterministic turn-based `BCAST(w)` protocol on packed inputs.
pub trait WideTurnProtocol {
    /// The number of processors.
    fn n(&self) -> usize;

    /// Input bits per processor (`≤ 63`).
    fn input_bits(&self) -> u32;

    /// Message width `w` (`1..=16`).
    fn width(&self) -> u32;

    /// The number of turns.
    fn horizon(&self) -> u32;

    /// Which processor speaks on turn `t` (round-robin by default).
    fn speaker(&self, t: u32) -> usize {
        t as usize % self.n()
    }

    /// The message processor `proc` broadcasts (must be `< 2^width`).
    fn message(&self, proc: usize, input: u64, transcript: &WideTranscript) -> u64;
}

/// A [`WideTurnProtocol`] built from a closure.
pub struct FnWideProtocol<F> {
    n: usize,
    input_bits: u32,
    width: u32,
    horizon: u32,
    f: F,
}

impl<F> FnWideProtocol<F>
where
    F: Fn(usize, u64, &WideTranscript) -> u64,
{
    /// Wraps `f(proc, input, transcript) → message`.
    ///
    /// # Panics
    ///
    /// Panics on invalid dimensions (zero processors, width outside
    /// `1..=16`, or a horizon beyond the packed capacity).
    pub fn new(n: usize, input_bits: u32, width: u32, horizon: u32, f: F) -> Self {
        assert!(n > 0, "need at least one processor");
        assert!(input_bits <= 63, "packed inputs hold at most 63 bits");
        assert!((1..=16).contains(&width), "width must be in 1..=16");
        // Widened before multiplying: an absurd horizon must hit this
        // assert, not a u32 overflow.
        assert!(
            u64::from(horizon) * u64::from(width) <= 64,
            "horizon exceeds packed capacity"
        );
        FnWideProtocol {
            n,
            input_bits,
            width,
            horizon,
            f,
        }
    }
}

impl<F> WideTurnProtocol for FnWideProtocol<F>
where
    F: Fn(usize, u64, &WideTranscript) -> u64,
{
    fn n(&self) -> usize {
        self.n
    }

    fn input_bits(&self) -> u32 {
        self.input_bits
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn horizon(&self) -> u32 {
        self.horizon
    }

    fn message(&self, proc: usize, input: u64, transcript: &WideTranscript) -> u64 {
        let m = (self.f)(proc, input, transcript);
        assert!(m < (1u64 << self.width), "message exceeds width");
        m
    }
}

/// Runs a wide protocol on concrete inputs.
///
/// # Panics
///
/// Panics on input-count or input-width mismatches.
pub fn run_wide_protocol<P: WideTurnProtocol + ?Sized>(
    protocol: &P,
    inputs: &[u64],
) -> WideTranscript {
    assert_eq!(inputs.len(), protocol.n(), "one input per processor");
    let limit = 1u64 << protocol.input_bits();
    for &x in inputs {
        assert!(x < limit, "input exceeds {} bits", protocol.input_bits());
    }
    let mut t = WideTranscript::empty(protocol.width());
    for turn in 0..protocol.horizon() {
        let s = protocol.speaker(turn);
        let m = protocol.message(s, inputs[s], &t);
        t.push(m);
    }
    t
}

/// Packs `width` consecutive turns of a `BCAST(1)` protocol into one
/// `BCAST(width)` turn per *processor round*: on its turn, a processor
/// simulates its next `width` single-bit broadcasts (feeding its own bits
/// back into the simulated transcript) and ships them as one message.
///
/// This is the constructive direction of footnote 2: a `j·w`-turn
/// `BCAST(1)` protocol in which each processor's turns are contiguous
/// becomes a `j`-turn `BCAST(w)` protocol. (The general schedule costs the
/// usual `log n` factor; this adapter serves the experiments.)
pub struct PackedAdapter<P> {
    inner: P,
    width: u32,
}

impl<P: TurnProtocol> PackedAdapter<P> {
    /// Wraps a single-speaker-contiguous `BCAST(1)` protocol.
    ///
    /// # Panics
    ///
    /// Panics if the inner horizon is not a multiple of `width`.
    pub fn new(inner: P, width: u32) -> Self {
        assert!((1..=16).contains(&width), "width must be in 1..=16");
        assert_eq!(
            inner.horizon() % width,
            0,
            "inner horizon must be a multiple of the packing width"
        );
        PackedAdapter { inner, width }
    }

    /// Expands a wide transcript back into the inner single-bit form.
    fn unpack(&self, transcript: &WideTranscript) -> TurnTranscript {
        let mut t = TurnTranscript::empty();
        for i in 0..transcript.len() {
            let m = transcript.message(i);
            for b in 0..self.width {
                t.push((m >> b) & 1 == 1);
            }
        }
        t
    }
}

impl<P: TurnProtocol> WideTurnProtocol for PackedAdapter<P> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn input_bits(&self) -> u32 {
        self.inner.input_bits()
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn horizon(&self) -> u32 {
        self.inner.horizon() / self.width
    }

    fn speaker(&self, t: u32) -> usize {
        self.inner.speaker(t * self.width)
    }

    fn message(&self, proc: usize, input: u64, transcript: &WideTranscript) -> u64 {
        let mut bits = self.unpack(transcript);
        let mut message = 0u64;
        for b in 0..self.width {
            let turn = transcript.len() * self.width + b;
            assert_eq!(
                self.inner.speaker(turn),
                proc,
                "inner speaker must stay fixed across one packed message"
            );
            let bit = self.inner.bit(proc, input, &bits);
            if bit {
                message |= 1 << b;
            }
            bits.push(bit);
        }
        message
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::turn::FnProtocol;

    #[test]
    fn transcript_pack_unpack() {
        let mut t = WideTranscript::empty(4);
        t.push(0xA);
        t.push(0x3);
        t.push(0xF);
        assert_eq!(t.len(), 3);
        assert_eq!(t.message(0), 0xA);
        assert_eq!(t.message(2), 0xF);
        let p = t.prefix(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.message(1), 0x3);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_message_rejected() {
        WideTranscript::empty(2).push(4);
    }

    #[test]
    #[should_panic(expected = "packed capacity")]
    fn absurd_horizons_hit_the_capacity_check_not_an_overflow() {
        // horizon * width overflows u32; the widened check must still
        // report the capacity violation.
        let _ = FnWideProtocol::new(1, 1, 16, u32::MAX / 4, |_, _, _| 0);
    }

    #[test]
    fn capacity_by_width() {
        assert_eq!(WideTranscript::empty(1).capacity(), 64);
        assert_eq!(WideTranscript::empty(3).capacity(), 21);
        assert_eq!(WideTranscript::empty(16).capacity(), 4);
    }

    #[test]
    fn run_wide_protocol_basic() {
        // Each processor ships its low 2 input bits as one message.
        let p = FnWideProtocol::new(3, 4, 2, 3, |_, input, _| input & 0b11);
        let t = run_wide_protocol(&p, &[0b0110, 0b0001, 0b1011]);
        assert_eq!(t.message(0), 0b10);
        assert_eq!(t.message(1), 0b01);
        assert_eq!(t.message(2), 0b11);
    }

    #[test]
    fn adapter_matches_inner_protocol() {
        // Inner BCAST(1): 2 processors, each speaks 2 contiguous turns
        // (speaker schedule: t/2), broadcasting input bits adaptively.
        struct Contig<F>(FnProtocol<F>);
        impl<F: Fn(usize, u64, &TurnTranscript) -> bool> TurnProtocol for Contig<F> {
            fn n(&self) -> usize {
                self.0.n()
            }
            fn input_bits(&self) -> u32 {
                self.0.input_bits()
            }
            fn horizon(&self) -> u32 {
                self.0.horizon()
            }
            fn speaker(&self, t: u32) -> usize {
                (t / 2) as usize % self.n()
            }
            fn bit(&self, proc: usize, input: u64, tr: &TurnTranscript) -> bool {
                self.0.bit(proc, input, tr)
            }
        }
        let inner = Contig(FnProtocol::new(2, 3, 4, |_, input, tr| {
            (input >> (tr.len() % 3)) & 1 == 1
        }));
        let inputs = [0b101u64, 0b010];
        // Direct single-bit run with the contiguous schedule.
        let mut bits = TurnTranscript::empty();
        for t in 0..4 {
            let s = inner.speaker(t);
            let b = inner.bit(s, inputs[s], &bits);
            bits.push(b);
        }
        // Packed run.
        let wide = PackedAdapter::new(inner, 2);
        assert_eq!(wide.horizon(), 2);
        let wt = run_wide_protocol(&wide, &inputs);
        // Unpacked messages must equal the single-bit transcript.
        for t in 0..4u32 {
            let msg = wt.message(t / 2);
            assert_eq!((msg >> (t % 2)) & 1 == 1, bits.bit(t), "turn {t}");
        }
    }
}
