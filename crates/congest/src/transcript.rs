//! Transcript types: the history of everything broadcast so far.
//!
//! The paper (§1.3): "the 'transcript' is a list of all messages sent so
//! far as well as who sent which message and when". With a fixed speaker
//! schedule the who/when are implicit, so a turn transcript is just the bit
//! string of messages — packed here into a `u64` for the exact engine's
//! benefit.

use bcc_f2::BitVec;

/// A prefix of a turn-based `BCAST(1)` execution: one bit per turn,
/// packed, at most 64 turns.
///
/// Turn `t`'s bit is bit `t` of `bits`. The speaker schedule lives in the
/// protocol ([`crate::turn::TurnProtocol::speaker`]), not here.
///
/// # Example
///
/// ```
/// use bcc_congest::TurnTranscript;
///
/// let mut p = TurnTranscript::empty();
/// p.push(true);
/// p.push(false);
/// assert_eq!(p.len(), 2);
/// assert!(p.bit(0) && !p.bit(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TurnTranscript {
    bits: u64,
    len: u32,
}

impl TurnTranscript {
    /// The empty transcript.
    pub fn empty() -> Self {
        TurnTranscript::default()
    }

    /// Reconstructs a transcript from packed bits and a length.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64` or if `bits` has set bits at or above `len`.
    pub fn from_bits(bits: u64, len: u32) -> Self {
        assert!(len <= 64, "turn transcripts hold at most 64 turns");
        if len < 64 {
            assert_eq!(bits >> len, 0, "bits beyond the length must be zero");
        }
        TurnTranscript { bits, len }
    }

    /// The number of turns recorded.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether no turn has happened yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit broadcast on turn `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= len`.
    pub fn bit(&self, t: u32) -> bool {
        assert!(t < self.len, "turn {t} not yet recorded (len {})", self.len);
        (self.bits >> t) & 1 == 1
    }

    /// Appends the next turn's bit.
    ///
    /// # Panics
    ///
    /// Panics at 64 turns.
    pub fn push(&mut self, bit: bool) {
        assert!(self.len < 64, "turn transcript full");
        if bit {
            self.bits |= 1u64 << self.len;
        }
        self.len += 1;
    }

    /// This transcript extended by one bit (functional form of
    /// [`TurnTranscript::push`]).
    pub fn child(&self, bit: bool) -> Self {
        let mut c = *self;
        c.push(bit);
        c
    }

    /// The first `t` turns (the paper's `p^{(t)}` prefix notation).
    ///
    /// # Panics
    ///
    /// Panics if `t > len`.
    pub fn prefix(&self, t: u32) -> Self {
        assert!(t <= self.len, "prefix longer than transcript");
        let mask = if t == 64 { !0u64 } else { (1u64 << t) - 1 };
        TurnTranscript {
            bits: self.bits & mask,
            len: t,
        }
    }

    /// The packed bits (bit `t` = turn `t`).
    pub fn as_u64(&self) -> u64 {
        self.bits
    }

    /// Iterates over the recorded bits in turn order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |t| self.bit(t))
    }
}

/// The full log of a synchronous-round execution: `rounds[r][i]` is the
/// message processor `i` broadcast in round `r`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundLog {
    rounds: Vec<Vec<u64>>,
}

impl RoundLog {
    /// An empty log.
    pub fn new() -> Self {
        RoundLog::default()
    }

    /// The number of completed rounds.
    pub fn rounds(&self) -> usize {
        self.rounds.len()
    }

    /// The messages of round `r` (one per processor).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn round(&self, r: usize) -> &[u64] {
        &self.rounds[r]
    }

    /// The message processor `i` broadcast in round `r`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn message(&self, r: usize, i: usize) -> u64 {
        self.rounds[r][i]
    }

    /// Appends a completed round.
    pub fn push_round(&mut self, messages: Vec<u64>) {
        if let Some(first) = self.rounds.first() {
            assert_eq!(
                first.len(),
                messages.len(),
                "all rounds must have the same processor count"
            );
        }
        self.rounds.push(messages);
    }

    /// All messages broadcast by processor `i`, in round order.
    pub fn by_processor(&self, i: usize) -> Vec<u64> {
        self.rounds.iter().map(|r| r[i]).collect()
    }

    /// Reassembles the bits processor `i` broadcast across rounds into a
    /// [`BitVec`], `width_bits` per round, earliest round first
    /// (little-endian within each message).
    pub fn bits_by_processor(&self, i: usize, width_bits: u32) -> BitVec {
        let mut out = BitVec::zeros(self.rounds.len() * width_bits as usize);
        for (r, round) in self.rounds.iter().enumerate() {
            let msg = round[i];
            for b in 0..width_bits {
                if (msg >> b) & 1 == 1 {
                    out.set(r * width_bits as usize + b as usize, true);
                }
            }
        }
        out
    }

    /// Total bits broadcast by all processors so far.
    pub fn total_bits(&self, width_bits: u32) -> usize {
        self.rounds.len() * self.rounds.first().map_or(0, Vec::len) * width_bits as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read() {
        let mut t = TurnTranscript::empty();
        assert!(t.is_empty());
        t.push(true);
        t.push(false);
        t.push(true);
        assert_eq!(t.len(), 3);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![true, false, true]);
        assert_eq!(t.as_u64(), 0b101);
    }

    #[test]
    fn child_does_not_mutate() {
        let t = TurnTranscript::empty();
        let c = t.child(true);
        assert_eq!(t.len(), 0);
        assert_eq!(c.len(), 1);
        assert!(c.bit(0));
    }

    #[test]
    fn prefix_truncates() {
        let mut t = TurnTranscript::empty();
        for b in [true, true, false, true] {
            t.push(b);
        }
        let p = t.prefix(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.as_u64(), 0b11);
    }

    #[test]
    fn from_bits_validates() {
        let t = TurnTranscript::from_bits(0b101, 3);
        assert!(t.bit(2));
    }

    #[test]
    #[should_panic(expected = "must be zero")]
    fn from_bits_rejects_stray_bits() {
        TurnTranscript::from_bits(0b1000, 3);
    }

    #[test]
    fn capacity_is_64() {
        let mut t = TurnTranscript::empty();
        for i in 0..64 {
            t.push(i % 2 == 0);
        }
        assert_eq!(t.len(), 64);
        assert_eq!(t.prefix(64), t);
    }

    #[test]
    #[should_panic(expected = "full")]
    fn push_past_capacity_panics() {
        let mut t = TurnTranscript::empty();
        for _ in 0..65 {
            t.push(false);
        }
    }

    #[test]
    fn round_log_accessors() {
        let mut log = RoundLog::new();
        log.push_round(vec![1, 0, 1]);
        log.push_round(vec![0, 1, 1]);
        assert_eq!(log.rounds(), 2);
        assert_eq!(log.message(1, 1), 1);
        assert_eq!(log.by_processor(2), vec![1, 1]);
        assert_eq!(log.total_bits(1), 6);
    }

    #[test]
    fn bits_by_processor_reassembles() {
        let mut log = RoundLog::new();
        // width 2: processor 0 sends 0b10 then 0b01.
        log.push_round(vec![0b10, 0b11]);
        log.push_round(vec![0b01, 0b00]);
        let bits = log.bits_by_processor(0, 2);
        assert_eq!(
            bits.iter().collect::<Vec<_>>(),
            vec![false, true, true, false]
        );
    }

    #[test]
    #[should_panic(expected = "same processor count")]
    fn mismatched_round_width_panics() {
        let mut log = RoundLog::new();
        log.push_round(vec![0, 1]);
        log.push_round(vec![0]);
    }
}
