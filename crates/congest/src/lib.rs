//! The Broadcast Congested Clique model of Chen & Grossman (PODC 2019).
//!
//! In `BCAST(b)` there are `n` processors with unlimited local computation;
//! computation proceeds in synchronous rounds, and in each round every
//! processor broadcasts one `b`-bit message to all others (the same message
//! to everyone). The paper works mainly with `b = 1` (`BCAST(1)`) and notes
//! every lower bound extends to `BCAST(log n)` with a `log n` factor loss.
//!
//! Two protocol styles coexist, matching the paper's two uses of the model:
//!
//! * **Turn protocols** ([`turn`]) — the lower-bound side. By Yao's
//!   principle the processors are deterministic, and the paper strengthens
//!   the model so processors speak *in turns*, one bit at a time
//!   (§1.3, §3: "on the tth turn, processor `(t−1) mod n + 1` gets to send a
//!   single bit"), which is what the exact transcript-distribution engine in
//!   `bcc-core` analyzes. A protocol is a pure function
//!   `fᵢ(input, transcript) → bit`.
//! * **Algorithm protocols** ([`network`]) — the upper-bound side
//!   (Appendix B clique finding, the PRG construction rounds, Newman
//!   simulation). Code drives a [`network::Network`] that enforces the
//!   broadcast discipline and does exact round/bit accounting in any
//!   `BCAST(b)`.
//!
//! [`model::Model`] carries `(n, b)`; [`transcript`] holds the packed
//! transcript types shared by both styles.

#![forbid(unsafe_code)]

pub mod model;
pub mod network;
pub mod transcript;
pub mod turn;
pub mod wide;

pub use model::Model;
pub use network::Network;
pub use transcript::{RoundLog, TurnTranscript};
pub use turn::{is_consistent, run_turn_protocol, FnProtocol, TurnProtocol};
