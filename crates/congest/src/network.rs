//! Synchronous-round execution with exact round and bit accounting: the
//! algorithm side of the model.
//!
//! Upper-bound protocols (Appendix B clique finding, the PRG construction,
//! the derandomization wrapper) are ordinary Rust orchestration code that
//! drives a [`Network`]. The network enforces the broadcast discipline —
//! every processor must submit exactly one message per round, each fitting
//! the model width — and tallies rounds, so the round counts the
//! experiments report are measured, not asserted.

use bcc_f2::BitVec;

use crate::model::Model;
use crate::transcript::RoundLog;

/// A synchronous Broadcast Congested Clique under a [`Model`].
///
/// # Example
///
/// ```
/// use bcc_congest::{Model, Network};
///
/// let mut net = Network::new(Model::bcast1(3));
/// let heard = net.broadcast_round(&[1, 0, 1]).to_vec();
/// assert_eq!(heard, vec![1, 0, 1]);
/// assert_eq!(net.rounds_used(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    model: Model,
    log: RoundLog,
}

impl Network {
    /// A fresh network with no rounds elapsed.
    pub fn new(model: Model) -> Self {
        Network {
            model,
            log: RoundLog::new(),
        }
    }

    /// The model parameters.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Rounds elapsed so far.
    pub fn rounds_used(&self) -> usize {
        self.log.rounds()
    }

    /// Total bits broadcast so far (all processors, all rounds).
    pub fn bits_used(&self) -> usize {
        self.log.total_bits(self.model.width_bits())
    }

    /// The full broadcast log.
    pub fn log(&self) -> &RoundLog {
        &self.log
    }

    /// Executes one synchronous round: every processor broadcasts one
    /// message; returns the messages everyone now knows.
    ///
    /// # Panics
    ///
    /// Panics if `messages.len() != n` or any message exceeds the model
    /// width.
    pub fn broadcast_round(&mut self, messages: &[u64]) -> &[u64] {
        assert_eq!(
            messages.len(),
            self.model.n(),
            "one message per processor per round"
        );
        for &m in messages {
            assert!(
                self.model.fits(m),
                "message {m} exceeds BCAST({}) width",
                self.model.width_bits()
            );
        }
        self.log.push_round(messages.to_vec());
        self.log.round(self.log.rounds() - 1)
    }

    /// Ships one equal-length bit payload per processor, `width_bits` bits
    /// per round, over `⌈payload_bits / width⌉` rounds. Processors with
    /// nothing to say must still pass a payload (of zeros) — in a broadcast
    /// round everyone speaks.
    ///
    /// Returns the number of rounds consumed.
    ///
    /// # Panics
    ///
    /// Panics if payload lengths differ or `payloads.len() != n`.
    pub fn broadcast_bits(&mut self, payloads: &[BitVec]) -> usize {
        assert_eq!(payloads.len(), self.model.n(), "one payload per processor");
        let len = payloads.first().map_or(0, BitVec::len);
        for p in payloads {
            assert_eq!(p.len(), len, "payloads must have equal length");
        }
        let width = self.model.width_bits() as usize;
        let rounds = self.model.rounds_for_bits(len);
        for r in 0..rounds {
            let mut messages = Vec::with_capacity(self.model.n());
            for p in payloads {
                let mut m = 0u64;
                for b in 0..width {
                    let idx = r * width + b;
                    if idx < len && p.get(idx) {
                        m |= 1 << b;
                    }
                }
                messages.push(m);
            }
            self.broadcast_round(&messages);
        }
        rounds
    }

    /// Recovers the payloads sent by [`Network::broadcast_bits`] from the
    /// last `rounds` rounds of the log, truncated to `payload_bits`.
    pub fn collect_bits(&self, rounds: usize, payload_bits: usize) -> Vec<BitVec> {
        let width = self.model.width_bits() as usize;
        let start = self.log.rounds() - rounds;
        (0..self.model.n())
            .map(|i| {
                let mut out = BitVec::zeros(payload_bits);
                for r in 0..rounds {
                    let msg = self.log.message(start + r, i);
                    for b in 0..width {
                        let idx = r * width + b;
                        if idx < payload_bits && (msg >> b) & 1 == 1 {
                            out.set(idx, true);
                        }
                    }
                }
                out
            })
            .collect()
    }
}

/// A unicast Congested Clique round (footnote 4 of the paper): each
/// processor sends a *possibly different* message to each other processor.
///
/// Provided for model-contrast ablations only; the paper's results are
/// about the broadcast model, where lower bounds do not transfer from
/// unicast.
#[derive(Debug, Clone)]
pub struct UnicastNetwork {
    model: Model,
    rounds: usize,
}

impl UnicastNetwork {
    /// A fresh unicast network.
    pub fn new(model: Model) -> Self {
        UnicastNetwork { model, rounds: 0 }
    }

    /// The model parameters.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Rounds elapsed.
    pub fn rounds_used(&self) -> usize {
        self.rounds
    }

    /// One unicast round: `messages[i][j]` goes from `i` to `j`. Returns
    /// the inboxes: `inbox[j][i]` = message from `i` to `j`.
    ///
    /// # Panics
    ///
    /// Panics unless `messages` is `n × n` with all entries fitting the
    /// width (the diagonal is ignored but must be present).
    pub fn unicast_round(&mut self, messages: &[Vec<u64>]) -> Vec<Vec<u64>> {
        let n = self.model.n();
        assert_eq!(messages.len(), n, "one outbox per processor");
        for row in messages {
            assert_eq!(row.len(), n, "one message per destination");
            for &m in row {
                assert!(self.model.fits(m), "message exceeds width");
            }
        }
        self.rounds += 1;
        (0..n)
            .map(|j| (0..n).map(|i| messages[i][j]).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_accounting() {
        let mut net = Network::new(Model::bcast1(4));
        net.broadcast_round(&[0, 1, 0, 1]);
        net.broadcast_round(&[1, 1, 0, 0]);
        assert_eq!(net.rounds_used(), 2);
        assert_eq!(net.bits_used(), 8);
        assert_eq!(net.log().message(1, 0), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn width_enforced() {
        let mut net = Network::new(Model::bcast1(2));
        net.broadcast_round(&[0, 2]);
    }

    #[test]
    #[should_panic(expected = "one message per processor")]
    fn processor_count_enforced() {
        let mut net = Network::new(Model::bcast1(3));
        net.broadcast_round(&[0, 1]);
    }

    #[test]
    fn broadcast_bits_roundtrip_bcast1() {
        let mut net = Network::new(Model::bcast1(2));
        let payloads = vec![
            BitVec::from_bools(&[true, false, true, true, false]),
            BitVec::from_bools(&[false, true, false, false, true]),
        ];
        let rounds = net.broadcast_bits(&payloads);
        assert_eq!(rounds, 5);
        let got = net.collect_bits(rounds, 5);
        assert_eq!(got, payloads);
    }

    #[test]
    fn broadcast_bits_roundtrip_wide() {
        let mut net = Network::new(Model::new(3, 4));
        let payloads = vec![
            BitVec::from_bools(&[true; 10]),
            BitVec::from_bools(&[false; 10]),
            {
                let mut v = BitVec::zeros(10);
                v.set(9, true);
                v
            },
        ];
        let rounds = net.broadcast_bits(&payloads);
        assert_eq!(rounds, 3); // ceil(10/4)
        let got = net.collect_bits(rounds, 10);
        assert_eq!(got, payloads);
    }

    #[test]
    fn broadcast_bits_empty_payload_is_free() {
        let mut net = Network::new(Model::bcast1(2));
        let rounds = net.broadcast_bits(&[BitVec::zeros(0), BitVec::zeros(0)]);
        assert_eq!(rounds, 0);
        assert_eq!(net.rounds_used(), 0);
    }

    #[test]
    fn bcast_log_vs_bcast1_round_ratio() {
        // Shipping 100 bits: BCAST(1) needs 100 rounds, BCAST(log n) with
        // n = 1024 needs 10 — the paper's footnote-2 log n factor.
        let mk = |model: Model| {
            let mut net = Network::new(model);
            let payloads: Vec<BitVec> = (0..model.n()).map(|_| BitVec::ones(100)).collect();
            net.broadcast_bits(&payloads)
        };
        assert_eq!(mk(Model::bcast1(4)), 100);
        assert_eq!(mk(Model::new(4, 10)), 10);
    }

    #[test]
    fn unicast_routes_messages() {
        let mut net = UnicastNetwork::new(Model::bcast1(3));
        let out = vec![vec![0, 1, 0], vec![1, 0, 1], vec![0, 0, 0]];
        let inboxes = net.unicast_round(&out);
        assert_eq!(inboxes[1][0], 1); // 0 -> 1
        assert_eq!(inboxes[0][1], 1); // 1 -> 0
        assert_eq!(inboxes[2][1], 1); // 1 -> 2
        assert_eq!(net.rounds_used(), 1);
    }
}
