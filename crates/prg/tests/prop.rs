//! Property-based tests for the PRG crate: the constructions' algebraic
//! invariants and the attacks' completeness, for arbitrary parameters.

use bcc_f2::{gauss, BitMatrix, BitVec};
use bcc_prg::attack::{attack_matrix_prg, Verdict};
use bcc_prg::toy::ToyPrg;
use bcc_prg::MatrixPrg;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prg_outputs_are_linear_extensions(
        n in 1usize..12,
        k in 1u32..8,
        extra in 1u32..8,
        seed in any::<u64>(),
    ) {
        let m = k + extra;
        let prg = MatrixPrg::new(n, k, m).expect("validated");
        let mut rng = StdRng::seed_from_u64(seed);
        let run = prg.run(&mut rng);
        prop_assert_eq!(run.outputs.len(), n);
        for (x, out) in run.seeds.iter().zip(&run.outputs) {
            prop_assert_eq!(out.len(), m as usize);
            prop_assert_eq!(&out.slice(0, k as usize), x);
            prop_assert_eq!(out.slice(k as usize, m as usize), run.matrix.left_mul_vec(x));
        }
    }

    #[test]
    fn prg_round_accounting_formula(
        n in 1usize..64,
        k in 1u32..10,
        extra in 1u32..10,
        seed in any::<u64>(),
    ) {
        let m = k + extra;
        let prg = MatrixPrg::new(n, k, m).expect("validated");
        let mut rng = StdRng::seed_from_u64(seed);
        let run = prg.run(&mut rng);
        let expect = (k as usize * extra as usize).div_ceil(n);
        prop_assert_eq!(run.rounds_used, expect);
        prop_assert_eq!(run.seed_bits_per_processor, k as usize + expect_bits(n, k, extra));
    }

    #[test]
    fn stacked_outputs_never_exceed_rank_k(
        n in 2usize..16,
        k in 1u32..6,
        extra in 1u32..6,
        seed in any::<u64>(),
    ) {
        let prg = MatrixPrg::new(n, k, k + extra).expect("validated");
        let mut rng = StdRng::seed_from_u64(seed);
        let run = prg.run(&mut rng);
        let stacked = BitMatrix::from_rows(run.outputs.clone(), (k + extra) as usize);
        prop_assert!(gauss::rank(&stacked) <= k as usize);
    }

    #[test]
    fn attack_always_accepts_genuine_outputs(
        n in 1usize..16,
        k in 1u32..8,
        seed in any::<u64>(),
    ) {
        let prg = MatrixPrg::new(n, k, k + 3).expect("validated");
        let mut rng = StdRng::seed_from_u64(seed);
        let run = prg.run(&mut rng);
        let res = attack_matrix_prg(k, &run.outputs);
        prop_assert_eq!(res.verdict, Verdict::Pseudorandom);
        prop_assert_eq!(res.rounds_used, k as usize + 1);
    }

    #[test]
    fn attack_verdict_agrees_with_direct_consistency(
        n in 2usize..16,
        k in 1u32..8,
        flip in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // The attack's broadcast pipeline must decide exactly the F2
        // consistency of the (seed, extra-bit) system — tampered or not.
        let prg = MatrixPrg::new(n, k, k + 2).expect("validated");
        let mut rng = StdRng::seed_from_u64(seed);
        let run = prg.run(&mut rng);
        let mut outputs = run.outputs.clone();
        if flip {
            outputs[0].flip(k as usize); // first extra bit
        }
        let x = BitMatrix::from_rows(
            outputs.iter().map(|o| o.slice(0, k as usize)).collect(),
            k as usize,
        );
        let y: BitVec = outputs.iter().map(|o| o.get(k as usize)).collect();
        let res = attack_matrix_prg(k, &outputs);
        prop_assert_eq!(
            res.verdict == Verdict::Pseudorandom,
            gauss::is_consistent(&x, &y)
        );
    }

    #[test]
    fn toy_outputs_lie_on_the_secret_coset(n in 1usize..10, k in 1u32..12, seed in any::<u64>()) {
        let prg = ToyPrg::new(n, k);
        let mut rng = StdRng::seed_from_u64(seed);
        let run = prg.run(&mut rng);
        for out in &run.outputs {
            let x = out.slice(0, k as usize);
            prop_assert_eq!(out.get(k as usize), x.dot(&run.secret));
        }
    }

    #[test]
    fn pseudo_matrix_rank_deficient(n in 2usize..24, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = bcc_prg::rank_hardness::sample_pseudo_matrix(&mut rng, n);
        prop_assert!(gauss::rank(&m) < n);
    }

    #[test]
    fn hierarchy_protocol_exact_for_any_matrix(
        n in 2usize..12,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = BitMatrix::random(&mut rng, n, n);
        let rows: Vec<BitVec> = m.iter_rows().cloned().collect();
        for k in 1..=n {
            let run = bcc_prg::hierarchy::solve_top_block(&rows, k);
            prop_assert_eq!(run.value, bcc_prg::hierarchy::top_block_full_rank(&m, k));
            prop_assert_eq!(run.rounds_used, k);
        }
    }
}

fn expect_bits(n: usize, k: u32, extra: u32) -> usize {
    (k as usize * extra as usize).div_ceil(n)
}
