//! Efficiently saving random bits (Corollary 7.1).
//!
//! The transform: a `j`-round randomized `BCAST(1)` algorithm in which each
//! processor consumes up to `m = O(n)` private random bits becomes an
//! `O(j)`-round algorithm consuming `O(j + log n)` random bits per
//! processor — run the [`MatrixPrg`] construction first (`O(k)` rounds,
//! `O(k)` fresh bits per processor with `k = Θ(j + log n)`), then feed the
//! algorithm the pseudorandom outputs as its tape. Theorem 5.4 guarantees
//! the algorithm's transcript distribution moves by at most `O(jn/2^{k/9})`
//! in statistical distance, so success probability is preserved up to that
//! much.
//!
//! The whole transform is *efficient*: the only overhead is the `O(kn)`
//! time to compute `xᵀM` (the paper's point versus Newman's argument,
//! Appendix A, which is non-constructive).

use bcc_congest::Network;
use bcc_f2::BitVec;
use rand::Rng;

use crate::full::MatrixPrg;

/// A randomized Broadcast Congested Clique algorithm: deterministic given a
/// per-processor random tape.
///
/// `run` must drive all communication through the supplied [`Network`]
/// (which enforces the model and counts rounds) and read processor `i`'s
/// randomness exclusively from `tapes[i]`.
pub trait RandomizedAlgorithm {
    /// The algorithm's result (whatever the processors output).
    type Output;

    /// Random bits each processor's tape must hold.
    fn tape_bits(&self) -> usize;

    /// Executes the algorithm with the given tapes.
    fn run(&self, net: &mut Network, tapes: &[BitVec]) -> Self::Output;
}

/// Accounting for one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomnessAccounting {
    /// Rounds consumed in total (PRG construction + algorithm).
    pub rounds: usize,
    /// Fresh random bits consumed per processor.
    pub random_bits_per_processor: usize,
}

/// Runs `algo` with truly random tapes.
pub fn run_with_true_randomness<A, R>(
    algo: &A,
    net: &mut Network,
    rng: &mut R,
) -> (A::Output, RandomnessAccounting)
where
    A: RandomizedAlgorithm,
    R: Rng + ?Sized,
{
    let n = net.model().n();
    let tapes: Vec<BitVec> = (0..n)
        .map(|_| BitVec::random(rng, algo.tape_bits()))
        .collect();
    let before = net.rounds_used();
    let out = algo.run(net, &tapes);
    let acct = RandomnessAccounting {
        rounds: net.rounds_used() - before,
        random_bits_per_processor: algo.tape_bits(),
    };
    (out, acct)
}

/// Runs `algo` with PRG-generated tapes: the Corollary 7.1 transform.
///
/// Uses a seed of `k` bits (plus the shared-matrix contribution) per
/// processor; the PRG construction rounds are counted in the result.
///
/// # Panics
///
/// Panics if the algorithm's tape is not longer than `k` (then the PRG
/// cannot stretch) — pick a smaller `k`.
pub fn run_derandomized<A, R>(
    algo: &A,
    net: &mut Network,
    k: u32,
    rng: &mut R,
) -> (A::Output, RandomnessAccounting)
where
    A: RandomizedAlgorithm,
    R: Rng + ?Sized,
{
    let m = algo.tape_bits();
    assert!(
        m > k as usize,
        "tape ({m} bits) must exceed the seed k = {k} for stretching"
    );
    let n = net.model().n();
    let prg = MatrixPrg::new(n, k, m as u32).expect("validated parameters");
    let before = net.rounds_used();
    let run = prg.run_in(net, rng);
    let out = algo.run(net, &run.outputs);
    let acct = RandomnessAccounting {
        rounds: net.rounds_used() - before,
        random_bits_per_processor: run.seed_bits_per_processor,
    };
    (out, acct)
}

/// A demonstration algorithm for the transform: distributed estimation of
/// the total Hamming weight of the processors' inputs by random sampling.
///
/// Each processor holds `input_bits` private bits; over `samples` rounds it
/// broadcasts the value of a uniformly random position of its own input
/// (positions drawn from its tape). The common output is the average
/// sampled density; its deviation from the true density is governed by
/// Hoeffding — *if the tape bits are (pseudo)random*. A PRG that failed to
/// fool the protocol would visibly skew the estimate.
#[derive(Debug, Clone)]
pub struct SamplingWeightEstimator {
    /// Per-processor inputs.
    pub inputs: Vec<BitVec>,
    /// Sampling rounds.
    pub samples: usize,
}

impl SamplingWeightEstimator {
    /// Bits needed to index one input position.
    fn index_bits(&self) -> usize {
        let len = self.inputs[0].len();
        (usize::BITS - (len - 1).leading_zeros()) as usize
    }

    /// The true total density (fraction of ones over all inputs).
    pub fn true_density(&self) -> f64 {
        let ones: usize = self.inputs.iter().map(BitVec::count_ones).sum();
        let total: usize = self.inputs.iter().map(BitVec::len).sum();
        ones as f64 / total as f64
    }
}

impl RandomizedAlgorithm for SamplingWeightEstimator {
    type Output = f64;

    fn tape_bits(&self) -> usize {
        self.samples * self.index_bits()
    }

    fn run(&self, net: &mut Network, tapes: &[BitVec]) -> f64 {
        let n = net.model().n();
        assert_eq!(self.inputs.len(), n, "one input per processor");
        let idx_bits = self.index_bits();
        let len = self.inputs[0].len();
        let mut ones = 0usize;
        for s in 0..self.samples {
            let messages: Vec<u64> = (0..n)
                .map(|i| {
                    // Read idx_bits from the tape (rejection-free modular
                    // mapping; slight bias is irrelevant at these sizes).
                    let mut idx = 0usize;
                    for b in 0..idx_bits {
                        if tapes[i].get(s * idx_bits + b) {
                            idx |= 1 << b;
                        }
                    }
                    u64::from(self.inputs[i].get(idx % len))
                })
                .collect();
            let heard = net.broadcast_round(&messages);
            ones += heard.iter().filter(|&&m| m == 1).count();
        }
        ones as f64 / (self.samples * n) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_congest::Model;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn estimator(
        rng: &mut StdRng,
        n: usize,
        bits: usize,
        samples: usize,
    ) -> SamplingWeightEstimator {
        SamplingWeightEstimator {
            inputs: (0..n).map(|_| BitVec::random(rng, bits)).collect(),
            samples,
        }
    }

    #[test]
    fn true_randomness_estimates_density() {
        let mut rng = StdRng::seed_from_u64(1);
        let algo = estimator(&mut rng, 16, 64, 40);
        let mut net = Network::new(Model::bcast1(16));
        let (est, acct) = run_with_true_randomness(&algo, &mut net, &mut rng);
        assert!((est - algo.true_density()).abs() < 0.08, "estimate {est}");
        assert_eq!(acct.rounds, 40);
        assert_eq!(acct.random_bits_per_processor, 40 * 6);
    }

    #[test]
    fn derandomized_estimates_density_too() {
        let mut rng = StdRng::seed_from_u64(2);
        let algo = estimator(&mut rng, 16, 64, 40);
        let mut net = Network::new(Model::bcast1(16));
        let (est, _) = run_derandomized(&algo, &mut net, 24, &mut rng);
        assert!((est - algo.true_density()).abs() < 0.08, "estimate {est}");
    }

    #[test]
    fn derandomization_saves_random_bits() {
        // Theorem 1.3's regime needs m = O(n): with n = 128 processors and
        // a 120-bit tape, a k = 16 seed costs 16 + ceil(16·104/128) = 29
        // bits versus 120.
        let mut rng = StdRng::seed_from_u64(3);
        let algo = estimator(&mut rng, 128, 64, 20); // tape: 120 bits
        let mut net_a = Network::new(Model::bcast1(128));
        let (_, acct_true) = run_with_true_randomness(&algo, &mut net_a, &mut rng);
        let mut net_b = Network::new(Model::bcast1(128));
        let (_, acct_prg) = run_derandomized(&algo, &mut net_b, 16, &mut rng);
        assert!(
            acct_prg.random_bits_per_processor < acct_true.random_bits_per_processor / 3,
            "{} vs {}",
            acct_prg.random_bits_per_processor,
            acct_true.random_bits_per_processor
        );
    }

    #[test]
    fn derandomization_round_overhead_is_prg_rounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 32;
        let algo = estimator(&mut rng, n, 64, 60);
        let k = 20u32;
        let m = algo.tape_bits() as u32;
        let prg_rounds = (k as usize * (m - k) as usize).div_ceil(n);
        let mut net = Network::new(Model::bcast1(n));
        let (_, acct) = run_derandomized(&algo, &mut net, k, &mut rng);
        assert_eq!(acct.rounds, 60 + prg_rounds);
    }

    #[test]
    fn estimates_statistically_indistinguishable() {
        // Repeat both variants and compare the estimate distributions
        // loosely (means within noise).
        let mut rng = StdRng::seed_from_u64(5);
        let algo = estimator(&mut rng, 16, 32, 30);
        let trials = 60;
        let mut sum_true = 0.0;
        let mut sum_prg = 0.0;
        for _ in 0..trials {
            let mut na = Network::new(Model::bcast1(16));
            sum_true += run_with_true_randomness(&algo, &mut na, &mut rng).0;
            let mut nb = Network::new(Model::bcast1(16));
            sum_prg += run_derandomized(&algo, &mut nb, 16, &mut rng).0;
        }
        let (mt, mp) = (sum_true / trials as f64, sum_prg / trials as f64);
        assert!((mt - mp).abs() < 0.05, "means {mt} vs {mp}");
    }

    #[test]
    #[should_panic(expected = "must exceed the seed")]
    fn non_stretching_parameters_panic() {
        let mut rng = StdRng::seed_from_u64(6);
        let algo = estimator(&mut rng, 4, 8, 1); // tape 3 bits
        let mut net = Network::new(Model::bcast1(4));
        let _ = run_derandomized(&algo, &mut net, 10, &mut rng);
    }
}
