//! The complete matrix PRG (Theorem 1.3, §7).
//!
//! Parameters `(n, k, m)`: each of `n` processors ends with `m`
//! pseudorandom bits from `O(k)` private seed bits. Construction (quoted
//! from Theorem 1.3):
//!
//! 1. each processor gets `k + k·(m−k)/n` private random bits;
//! 2. in `O(k·(m−k)/n)` rounds all processors broadcast their last
//!    `k·(m−k)/n` bits, assembling a shared matrix
//!    `M ∈ {0,1}^{k×(m−k)}`;
//! 3. each processor outputs `(x, xᵀM)` where `x` is its first `k` bits.
//!
//! Theorem 5.4: for `j ≤ k/10` and `m ≤ 2^{k/20}`, no `j`-round `BCAST(1)`
//! protocol tells case (B) (these outputs) from case (A) (`m` uniform bits
//! each) with statistical distance above `O(jn/2^{k/9})`.

use bcc_congest::{Model, Network};
use bcc_core::{ProductInput, RowSupport};
use bcc_f2::{BitMatrix, BitVec};
use rand::Rng;

/// The matrix PRG `x ↦ (x, xᵀM)` with broadcast-assembled `M`.
///
/// # Example
///
/// ```
/// use bcc_prg::MatrixPrg;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let prg = MatrixPrg::new(8, 16, 64).unwrap();
/// let mut rng = StdRng::seed_from_u64(1);
/// let run = prg.run(&mut rng);
/// assert_eq!(run.outputs.len(), 8);
/// assert_eq!(run.outputs[0].len(), 64);
/// // Construction cost matches Theorem 1.3: ceil(k*(m-k)/n) broadcast bits
/// // per processor, one per BCAST(1) round.
/// assert_eq!(run.rounds_used, (16 * (64 - 16) + 7) / 8);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MatrixPrg {
    n: usize,
    k: u32,
    m: u32,
}

/// An invalid-parameter error for [`MatrixPrg::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidPrgParams {
    reason: &'static str,
}

impl std::fmt::Display for InvalidPrgParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid PRG parameters: {}", self.reason)
    }
}

impl std::error::Error for InvalidPrgParams {}

/// The outcome of one PRG construction run.
#[derive(Debug, Clone)]
pub struct PrgRun {
    /// The assembled secret matrix `M ∈ {0,1}^{k×(m−k)}`.
    pub matrix: BitMatrix,
    /// Each processor's private seed `x ∈ {0,1}^k`.
    pub seeds: Vec<BitVec>,
    /// Each processor's `m` pseudorandom bits `(x, xᵀM)`.
    pub outputs: Vec<BitVec>,
    /// `BCAST(1)` rounds spent assembling `M`.
    pub rounds_used: usize,
    /// Private random bits consumed per processor
    /// (`k + ⌈k·(m−k)/n⌉`).
    pub seed_bits_per_processor: usize,
}

impl MatrixPrg {
    /// A `(k, m, n)` PRG.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < k < m` and `n > 0`.
    pub fn new(n: usize, k: u32, m: u32) -> Result<Self, InvalidPrgParams> {
        if n == 0 {
            return Err(InvalidPrgParams {
                reason: "need at least one processor",
            });
        }
        if k == 0 {
            return Err(InvalidPrgParams {
                reason: "need at least one seed bit",
            });
        }
        if m <= k {
            return Err(InvalidPrgParams {
                reason: "output length m must exceed seed length k",
            });
        }
        Ok(MatrixPrg { n, k, m })
    }

    /// The number of processors.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The per-processor seed length `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The per-processor output length `m`.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Matrix bits each processor contributes, `⌈k(m−k)/n⌉`.
    pub fn shared_bits_per_processor(&self) -> usize {
        (self.k as usize * (self.m - self.k) as usize).div_ceil(self.n)
    }

    /// Total private random bits per processor, `k + ⌈k(m−k)/n⌉`.
    pub fn seed_bits_per_processor(&self) -> usize {
        self.k as usize + self.shared_bits_per_processor()
    }

    /// Runs the construction in a fresh `BCAST(1)` network, with round
    /// accounting.
    pub fn run<R: Rng + ?Sized>(&self, rng: &mut R) -> PrgRun {
        let mut net = Network::new(Model::bcast1(self.n));
        self.run_in(&mut net, rng)
    }

    /// Runs the construction inside an existing network (so a larger
    /// protocol can account for the PRG rounds as part of its own budget).
    pub fn run_in<R: Rng + ?Sized>(&self, net: &mut Network, rng: &mut R) -> PrgRun {
        assert_eq!(net.model().n(), self.n, "network size mismatch");
        let matrix_bits = self.k as usize * (self.m - self.k) as usize;
        let per_proc = self.shared_bits_per_processor();

        // Private seeds: x (k bits) + the processor's share of M.
        let seeds: Vec<BitVec> = (0..self.n)
            .map(|_| BitVec::random(rng, self.k as usize))
            .collect();
        let shares: Vec<BitVec> = (0..self.n).map(|_| BitVec::random(rng, per_proc)).collect();

        // Broadcast the shares; everyone assembles M from the first
        // k*(m-k) of the n*per_proc received bits (processor-major order).
        let before = net.rounds_used();
        let sent = net.broadcast_bits(&shares);
        let received = net.collect_bits(sent, per_proc);
        let rounds_used = net.rounds_used() - before;

        let mut flat = BitVec::zeros(self.n * per_proc);
        for (i, share) in received.iter().enumerate() {
            for b in 0..per_proc {
                if share.get(b) {
                    flat.set(i * per_proc + b, true);
                }
            }
        }
        let mut matrix = BitMatrix::zeros(self.k as usize, (self.m - self.k) as usize);
        for idx in 0..matrix_bits {
            if flat.get(idx) {
                matrix.set(
                    idx / (self.m - self.k) as usize,
                    idx % (self.m - self.k) as usize,
                    true,
                );
            }
        }

        let outputs = seeds
            .iter()
            .map(|x| x.concat(&matrix.left_mul_vec(x)))
            .collect();

        if let Some(obs) = bcc_obs::current() {
            obs.add("prg.blocks_drawn", bcc_obs::Class::Work, self.n as u64);
        }
        PrgRun {
            matrix,
            seeds,
            outputs,
            rounds_used,
            seed_bits_per_processor: self.seed_bits_per_processor(),
        }
    }

    /// The outputs for given seeds under a given matrix (the deterministic
    /// core of the construction).
    pub fn expand(&self, matrix: &BitMatrix, seed: &BitVec) -> BitVec {
        assert_eq!(seed.len(), self.k as usize, "seed length mismatch");
        assert_eq!(matrix.nrows(), self.k as usize, "matrix rows mismatch");
        assert_eq!(
            matrix.ncols(),
            (self.m - self.k) as usize,
            "matrix cols mismatch"
        );
        seed.concat(&matrix.left_mul_vec(seed))
    }
}

/// The support of `U_M` as packed `m`-bit points `(x, xᵀM)`, for the exact
/// engine.
///
/// # Panics
///
/// Panics if `m > 25` or `k > 20` (supports are enumerated).
pub fn row_support(k: u32, m: u32, matrix: &BitMatrix) -> RowSupport {
    assert!(m <= 25, "support too large to enumerate");
    assert!(k < m, "need k < m");
    assert!(k <= 20, "seed space too large to enumerate");
    assert_eq!(matrix.nrows(), k as usize);
    assert_eq!(matrix.ncols(), (m - k) as usize);
    let points = (0..(1u64 << k))
        .map(|x| {
            let xv = BitVec::from_u64(x, k as usize);
            let ext = matrix.left_mul_vec(&xv);
            x | (ext.to_u64() << k)
        })
        .collect();
    if let Some(obs) = bcc_obs::current() {
        obs.add("prg.support_points", bcc_obs::Class::Work, 1u64 << k);
    }
    RowSupport::explicit(m, points)
}

/// Case (B) of Theorem 5.4 for a fixed secret matrix: all `n` processors
/// i.i.d. uniform on `U_M` (one shared support allocation, not `n`
/// copies).
pub fn pseudo_input(n: usize, k: u32, m: u32, matrix: &BitMatrix) -> ProductInput {
    ProductInput::repeated(row_support(k, m, matrix), n)
}

/// Case (A): all processors uniform on `{0,1}^m`.
pub fn uniform_input(n: usize, m: u32) -> ProductInput {
    ProductInput::uniform(n, m)
}

/// The full decomposition family: one member per matrix
/// `M ∈ {0,1}^{k×(m−k)}`.
///
/// # Panics
///
/// Panics if `k·(m−k) > 12` (the family has `2^{k(m−k)}` members).
pub fn family(n: usize, k: u32, m: u32) -> Vec<ProductInput> {
    let bits = k * (m - k);
    assert!(bits <= 12, "family too large to enumerate");
    (0..(1u64 << bits))
        .map(|packed| {
            let mut mat = BitMatrix::zeros(k as usize, (m - k) as usize);
            for idx in 0..bits {
                if (packed >> idx) & 1 == 1 {
                    mat.set((idx / (m - k)) as usize, (idx % (m - k)) as usize, true);
                }
            }
            pseudo_input(n, k, m, &mat)
        })
        .collect()
}

/// Enumerates every matrix `M ∈ {0,1}^{k×(m−k)}` (for `k(m−k) ≤ 20`).
fn all_matrices(k: u32, m: u32) -> impl Iterator<Item = BitMatrix> {
    let bits = k * (m - k);
    assert!(bits <= 20, "matrix space too large to enumerate");
    (0..(1u64 << bits)).map(move |packed| {
        let mut mat = BitMatrix::zeros(k as usize, (m - k) as usize);
        for idx in 0..bits {
            if (packed >> idx) & 1 == 1 {
                mat.set((idx / (m - k)) as usize, (idx % (m - k)) as usize, true);
            }
        }
        mat
    })
}

/// `E_{U_M}[f]` for a truth table `f : {0,1}^m → {0,1}` (indexed by the
/// packed point), exactly: average over the `2^k` codewords `(x, xᵀM)`.
fn mean_on_code(table: &[f64], k: u32, matrix: &BitMatrix) -> f64 {
    let mut sum = 0.0;
    for x in 0..(1u64 << k) {
        let xv = BitVec::from_u64(x, k as usize);
        let point = x | (matrix.left_mul_vec(&xv).to_u64() << k);
        sum += table[point as usize];
    }
    sum / (1u64 << k) as f64
}

/// **Lemma 7.3**, evaluated exactly:
/// `E_{M ∼ U_{k×(m−k)}} ‖f(U_m) − f(U_M)‖² ≤ 2^{−k}·(m−k)²·E[f]`.
///
/// Returns `(lhs, rhs)`; the lemma asserts `lhs ≤ rhs`.
///
/// # Panics
///
/// Panics if the table length is not `2^m` or the matrix space exceeds
/// `2^20` members.
pub fn lemma_7_3_check(k: u32, m: u32, table: &[f64]) -> (f64, f64) {
    assert_eq!(table.len(), 1usize << m, "table must have 2^m entries");
    let mean: f64 = table.iter().sum::<f64>() / table.len() as f64;
    let count = 1u64 << (k * (m - k));
    let lhs = all_matrices(k, m)
        .map(|mat| {
            let d = mean_on_code(table, k, &mat) - mean;
            d * d
        })
        .sum::<f64>()
        / count as f64;
    let rhs = 2f64.powi(-(k as i32)) * ((m - k) as f64).powi(2) * mean;
    (lhs, rhs)
}

/// **Lemma 7.2**, evaluated exactly: for a domain `D ⊆ {0,1}^m` with
/// `|D| ≥ 2^{m−k/2}`, `E_M ‖f(U_{M,D}) − f(U_{m,D})‖ ≤ 2^{−k/9}`
/// (assuming `m ≤ 2^{k/20}`). Empty conditional supports contribute
/// distance 0 per the paper's footnote (the conditional defaults to
/// `U_{m,D}` itself).
///
/// # Panics
///
/// Panics if `D` is empty or dimensions are inconsistent.
pub fn lemma_7_2_mean(k: u32, m: u32, table: &[f64], domain: &[u64]) -> f64 {
    assert_eq!(table.len(), 1usize << m, "table must have 2^m entries");
    assert!(!domain.is_empty(), "domain must be non-empty");
    let mean_d = domain.iter().map(|&p| table[p as usize]).sum::<f64>() / domain.len() as f64;
    let count = 1u64 << (k * (m - k));
    let total: f64 = all_matrices(k, m)
        .map(|mat| {
            // Restrict the code's support to D.
            let mut sum = 0.0;
            let mut hits = 0usize;
            for x in 0..(1u64 << k) {
                let xv = BitVec::from_u64(x, k as usize);
                let point = x | (mat.left_mul_vec(&xv).to_u64() << k);
                if domain.binary_search(&point).is_ok() {
                    sum += table[point as usize];
                    hits += 1;
                }
            }
            if hits == 0 {
                0.0
            } else {
                (sum / hits as f64 - mean_d).abs()
            }
        })
        .sum();
    total / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_congest::FnProtocol;
    use bcc_core::exec::{Estimator, ExactEstimator};
    use bcc_f2::gauss;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_round_count_matches_theorem() {
        // Theorem 1.3: O((m-k)/n * k) rounds; exactly ceil(k(m-k)/n) in
        // BCAST(1) with processor-major packing.
        let prg = MatrixPrg::new(16, 8, 40).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let run = prg.run(&mut rng);
        assert_eq!(run.rounds_used, (8 * 32usize).div_ceil(16));
        assert_eq!(run.seed_bits_per_processor, 8 + 16);
    }

    #[test]
    fn outputs_extend_seeds_linearly() {
        let prg = MatrixPrg::new(4, 6, 20).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let run = prg.run(&mut rng);
        for (seed, out) in run.seeds.iter().zip(&run.outputs) {
            assert_eq!(&out.slice(0, 6), seed);
            assert_eq!(out.slice(6, 20), run.matrix.left_mul_vec(seed));
        }
    }

    #[test]
    fn output_rows_live_in_rank_k_space() {
        // Stack the n outputs: rank ≤ k always (the average-case lower
        // bound's structural core).
        let prg = MatrixPrg::new(12, 5, 24).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let run = prg.run(&mut rng);
        let stacked = BitMatrix::from_rows(run.outputs.clone(), 24);
        assert!(gauss::rank(&stacked) <= 5);
    }

    #[test]
    fn uniform_outputs_would_have_higher_rank() {
        // Contrast: n=12 uniform 24-bit rows have rank 12 w.h.p.
        let mut rng = StdRng::seed_from_u64(4);
        let m = BitMatrix::random(&mut rng, 12, 24);
        assert!(gauss::rank(&m) >= 11);
    }

    #[test]
    fn expand_is_deterministic() {
        let prg = MatrixPrg::new(2, 4, 10).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mat = BitMatrix::random(&mut rng, 4, 6);
        let seed = BitVec::random(&mut rng, 4);
        assert_eq!(prg.expand(&mat, &seed), prg.expand(&mat, &seed));
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(MatrixPrg::new(0, 4, 8).is_err());
        assert!(MatrixPrg::new(4, 0, 8).is_err());
        assert!(MatrixPrg::new(4, 8, 8).is_err());
        assert!(MatrixPrg::new(4, 8, 4).is_err());
    }

    #[test]
    fn row_support_points_are_codewords() {
        let mut rng = StdRng::seed_from_u64(6);
        let mat = BitMatrix::random(&mut rng, 4, 3);
        let sup = row_support(4, 7, &mat);
        assert_eq!(sup.len(), 16);
        for &p in sup.points() {
            let x = BitVec::from_u64(p & 0xF, 4);
            let ext = BitVec::from_u64(p >> 4, 3);
            assert_eq!(mat.left_mul_vec(&x), ext);
        }
    }

    #[test]
    fn family_enumerates_all_matrices() {
        let fam = family(2, 2, 4); // 2*(4-2) = 4 bits -> 16 matrices
        assert_eq!(fam.len(), 16);
        // Members are pairwise distinct as supports.
        let mut sets: Vec<Vec<u64>> = fam.iter().map(|inp| inp.row(0).points().to_vec()).collect();
        sets.sort();
        sets.dedup();
        assert_eq!(sets.len(), 16);
    }

    #[test]
    fn one_round_mixture_distance_obeys_theorem_5_4() {
        // Exact mixture walk at (n, k, m) = (3, 3, 5): distance must be
        // well below trivial and shrink with k.
        let (n, k, m) = (3usize, 3u32, 5u32);
        let proto = FnProtocol::new(n, m, n as u32, |_, input, tr| {
            (input & (0b10110 ^ tr.as_u64())).count_ones() % 2 == 1
        });
        let members = family(n, k, m);
        let baseline = uniform_input(n, m);
        let cmp = ExactEstimator::default().estimate_full(&proto, &members, &baseline);
        assert!(cmp.tv() <= cmp.progress() + 1e-12);
        assert!(cmp.tv() < 0.3, "distance {}", cmp.tv());
    }

    #[test]
    fn lemma_7_3_holds_for_families() {
        use bcc_stats::TruthTable;
        let (k, m) = (4u32, 7u32); // 12 matrix bits -> 4096 matrices
        let mut rng = StdRng::seed_from_u64(7);
        for table in [
            TruthTable::majority(m),
            TruthTable::parity(m, (1 << m) - 1),
            TruthTable::random(&mut rng, m),
            TruthTable::and(m, 0b1011),
        ] {
            let (lhs, rhs) = lemma_7_3_check(k, m, &table.to_f64_table());
            assert!(lhs <= rhs + 1e-12, "Lemma 7.3 violated: {lhs} > {rhs}");
        }
    }

    #[test]
    fn lemma_7_3_tight_for_code_indicator() {
        // f = indicator of one fixed matrix's code: the M* term alone
        // contributes (1 - 2^{k-m})² / count... more usefully, the lemma
        // must still hold with slack for this adversarial f.
        let (k, m) = (3u32, 5u32);
        let mut rng = StdRng::seed_from_u64(8);
        let mstar = BitMatrix::random(&mut rng, k as usize, (m - k) as usize);
        let sup = row_support(k, m, &mstar);
        let mut table = vec![0.0; 1 << m];
        for &p in sup.points() {
            table[p as usize] = 1.0;
        }
        let (lhs, rhs) = lemma_7_3_check(k, m, &table);
        assert!(lhs <= rhs + 1e-12, "{lhs} > {rhs}");
        assert!(lhs > 0.0, "the indicator must register some distance");
    }

    #[test]
    fn lemma_7_2_small_on_large_domains() {
        use bcc_stats::TruthTable;
        let (k, m) = (4u32, 7u32);
        let mut rng = StdRng::seed_from_u64(9);
        // Random half-cube domain (well above 2^{m-k/2}).
        let mut domain: Vec<u64> = (0..(1u64 << m))
            .filter(|_| rand::Rng::gen::<bool>(&mut rng))
            .collect();
        domain.sort_unstable();
        let f = TruthTable::random(&mut rng, m);
        let got = lemma_7_2_mean(k, m, &f.to_f64_table(), &domain);
        // The paper's bound is 2^{-k/9}; at toy scale we check an order of
        // magnitude under the trivial 1.
        assert!(got <= 2f64.powf(-(k as f64) / 9.0), "mean {got}");
    }

    #[test]
    fn lemma_7_2_full_domain_matches_7_3_scale() {
        use bcc_stats::TruthTable;
        let (k, m) = (4u32, 6u32);
        let domain: Vec<u64> = (0..(1u64 << m)).collect();
        let f = TruthTable::majority(m);
        let mean = lemma_7_2_mean(k, m, &f.to_f64_table(), &domain);
        let (mean_sq, _) = lemma_7_3_check(k, m, &f.to_f64_table());
        // Jensen: (E|X|)² <= E[X²].
        assert!(mean * mean <= mean_sq + 1e-12);
    }

    #[test]
    fn deeper_seed_shrinks_distance() {
        // Increasing k (at fixed m - k and protocol) shrinks the exact
        // mixture distance — the 2^{-Ω(k)} shape of Theorem 5.4.
        let distance_at = |k: u32| {
            let n = 2usize;
            let m = k + 2;
            let proto = FnProtocol::new(n, m, n as u32, move |_, input, tr| {
                (input & (0x35 ^ tr.as_u64())).count_ones() % 2 == 1
            });
            let members = family(n, k, m);
            let baseline = uniform_input(n, m);
            ExactEstimator::default()
                .estimate_full(&proto, &members, &baseline)
                .tv()
        };
        let d2 = distance_at(2);
        let d5 = distance_at(5);
        assert!(
            d5 <= d2 + 1e-12,
            "distance should shrink with k: {d2} -> {d5}"
        );
    }
}
