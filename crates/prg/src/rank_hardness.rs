//! The first average-case lower bound for `BCAST(1)` (Theorem 1.4).
//!
//! Distribute a uniform matrix `M ∈ {0,1}^{n×n}` row-per-processor and ask
//! whether it has full rank. A uniform matrix is full rank with probability
//! `→ Q₀ ≈ 0.2888`, yet the toy PRG's joint output — each row
//! `(xᵢ, ⟨xᵢ, b⟩)` with a shared secret `b` — always has rank `≤ n − 1`
//! while being indistinguishable from uniform to `n/20`-round protocols
//! (Theorem 5.3 with `k = n − 1`). The paper's counting argument then
//! shows no `n/20`-round protocol computes the indicator with probability
//! `0.99` on uniform inputs; [`theorem_1_4_error_bound`] is that argument
//! as a function, and the samplers below feed the measured side.

use bcc_f2::rank_dist::{full_rank_probability, limit_q};
use bcc_f2::{gauss, BitMatrix, BitVec};
use rand::Rng;

/// Samples the pseudo distribution `U_B` of Theorem 1.4: row `i` is
/// `(xᵢ, ⟨xᵢ, b⟩)` for private uniform `xᵢ ∈ {0,1}^{n−1}` and one shared
/// uniform `b ∈ {0,1}^{n−1}`. The resulting matrix always has rank
/// `≤ n − 1`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn sample_pseudo_matrix<R: Rng + ?Sized>(rng: &mut R, n: usize) -> BitMatrix {
    assert!(n >= 2, "need n >= 2");
    let b = BitVec::random(rng, n - 1);
    let rows = (0..n)
        .map(|_| {
            let x = BitVec::random(rng, n - 1);
            let y = x.dot(&b);
            x.concat(&BitVec::from_bools(&[y]))
        })
        .collect();
    BitMatrix::from_rows(rows, n)
}

/// The indicator `F_full-rank` of the theorem.
pub fn full_rank_indicator(m: &BitMatrix) -> bool {
    gauss::is_full_rank(m)
}

/// The accuracy of the best *input-oblivious* strategy (always answer
/// "not full rank"): `1 − Pr[rank = n] → 1 − Q₀ ≈ 0.711`.
///
/// This is the benchmark the theorem's 0.99 sits far above: a protocol
/// must genuinely communicate to beat it, and the theorem says `n/20`
/// rounds of communication do not suffice.
pub fn constant_guess_accuracy(n: usize) -> f64 {
    1.0 - full_rank_probability(n)
}

/// **Theorem 1.4's counting argument** as a function. Given
///
/// * `eps` — the assumed error bound of the protocol on uniform inputs
///   (the theorem contradicts `eps = 0.01`);
/// * `distance` — the transcript statistical distance between uniform and
///   pseudo inputs (exponentially small by Theorem 5.3; `o(1)` suffices);
/// * `n` — the matrix dimension,
///
/// returns the implied lower bound on the protocol's error probability on
/// uniform inputs. If the returned value exceeds `eps`, the assumption is
/// contradicted — no such protocol exists.
///
/// Mirrors the final chain of §6.1: with probability
/// `≥ Q₀ + Q₁ + Q₂ − small` the pseudo matrix's first `n − 1` columns have
/// rank ≥ n − 3, making the likelihood ratio `U_A(M)/U_B(M) ≥ 1/8`; every
/// pseudo matrix is rank deficient, so the protocol is wrong on the
/// `(≈ Q₀)`-mass of accept-answers it must keep giving.
pub fn theorem_1_4_error_bound(eps: f64, distance: f64, n: usize) -> f64 {
    let q0 = limit_q(0);
    // Pr over U_B that the first n-1 columns have rank >= n-3: at least
    // Q_0 + Q_1 + Q_2 (minus finite-size slack already inside `distance`
    // at the scales we run).
    let mass_high_rank: f64 = (0..3).map(limit_q).sum();
    let wrong_mass = 1.0 - q0 - eps - distance - (1.0 - mass_high_rank);
    (wrong_mass / 8.0).max(0.0) * if n >= 2 { 1.0 } else { 0.0 }
}

/// Measured acceptance statistics of a Boolean matrix test under the two
/// distributions — the experimental side of the theorem.
#[derive(Debug, Clone, Copy)]
pub struct TestProfile {
    /// Acceptance rate on uniform matrices.
    pub accept_uniform: f64,
    /// Acceptance rate on pseudo (rank-deficient) matrices.
    pub accept_pseudo: f64,
    /// Accuracy against `F_full-rank` on uniform matrices.
    pub accuracy_uniform: f64,
}

/// Profiles an arbitrary matrix test against the two distributions.
pub fn profile_test<R, F>(n: usize, trials: usize, test: F, rng: &mut R) -> TestProfile
where
    R: Rng + ?Sized,
    F: Fn(&BitMatrix) -> bool,
{
    assert!(trials > 0, "need at least one trial");
    let mut acc_u = 0usize;
    let mut acc_p = 0usize;
    let mut correct = 0usize;
    for _ in 0..trials {
        let u = BitMatrix::random(rng, n, n);
        let pu = test(&u);
        if pu {
            acc_u += 1;
        }
        if pu == full_rank_indicator(&u) {
            correct += 1;
        }
        let p = sample_pseudo_matrix(rng, n);
        if test(&p) {
            acc_p += 1;
        }
    }
    TestProfile {
        accept_uniform: acc_u as f64 / trials as f64,
        accept_pseudo: acc_p as f64 / trials as f64,
        accuracy_uniform: correct as f64 / trials as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pseudo_matrices_are_never_full_rank() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [4usize, 8, 16, 32] {
            for _ in 0..20 {
                let m = sample_pseudo_matrix(&mut rng, n);
                assert!(gauss::rank(&m) < n);
                assert!(!full_rank_indicator(&m));
            }
        }
    }

    #[test]
    fn uniform_full_rank_rate_near_q0() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 24;
        let trials = 2000;
        let full = (0..trials)
            .filter(|_| full_rank_indicator(&BitMatrix::random(&mut rng, n, n)))
            .count();
        let rate = full as f64 / trials as f64;
        assert!((rate - limit_q(0)).abs() < 0.04, "rate {rate}");
    }

    #[test]
    fn pseudo_rank_profile_matches_column_argument() {
        // §6.1: with probability ~ Q_0 + Q_1 + Q_2 the first n-1 columns
        // of the pseudo matrix have rank >= n-3.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20;
        let trials = 1500;
        let mut high = 0;
        for _ in 0..trials {
            let m = sample_pseudo_matrix(&mut rng, n);
            let first_cols =
                BitMatrix::from_rows((0..n).map(|i| m.row(i).slice(0, n - 1)).collect(), n - 1);
            if gauss::rank(&first_cols) >= n - 3 {
                high += 1;
            }
        }
        let mass: f64 = (0..3).map(limit_q).sum();
        let rate = high as f64 / trials as f64;
        assert!(rate >= mass - 0.05, "rate {rate} vs theory {mass}");
    }

    #[test]
    fn counting_argument_contradicts_99_percent() {
        // eps = 0.01, distance o(1): the implied error bound exceeds eps —
        // the paper's ">" at the end of the proof (they derive > 0.05).
        let bound = theorem_1_4_error_bound(0.01, 0.001, 64);
        assert!(bound > 0.05, "bound {bound}");
        assert!(bound > 0.01, "contradiction with the assumed error");
    }

    #[test]
    fn counting_argument_degrades_gracefully() {
        // With large distance (weak PRG) no contradiction follows.
        let bound = theorem_1_4_error_bound(0.01, 0.9, 64);
        assert_eq!(bound, 0.0);
    }

    #[test]
    fn constant_guess_accuracy_value() {
        // ≈ 1 - 0.2888 = 0.7112 for large n.
        let acc = constant_guess_accuracy(40);
        assert!((acc - (1.0 - limit_q(0))).abs() < 1e-9);
        assert!(acc < 0.99, "the theorem's bar is above the trivial bound");
    }

    #[test]
    fn rank_test_itself_separates_distributions() {
        // The (unbounded-round) rank test tells them apart with advantage
        // ~ Q_0/2 — there is genuine signal, it just needs rounds.
        let mut rng = StdRng::seed_from_u64(4);
        let profile = profile_test(16, 1500, full_rank_indicator, &mut rng);
        assert_eq!(profile.accept_pseudo, 0.0);
        assert!((profile.accept_uniform - limit_q(0)).abs() < 0.05);
        assert!((profile.accuracy_uniform - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oblivious_tests_cannot_separate() {
        // A test that ignores rank structure: parity of all entries.
        let mut rng = StdRng::seed_from_u64(5);
        let profile = profile_test(
            16,
            2000,
            |m| m.iter_rows().map(|r| r.count_ones()).sum::<usize>() % 2 == 0,
            &mut rng,
        );
        assert!(
            (profile.accept_uniform - profile.accept_pseudo).abs() < 0.05,
            "oblivious test should not separate: {} vs {}",
            profile.accept_uniform,
            profile.accept_pseudo
        );
        assert!(profile.accuracy_uniform < 0.75);
    }
}
