//! Pseudorandom generators that fool the Broadcast Congested Clique —
//! the second main contribution of Chen & Grossman (PODC 2019).
//!
//! * [`toy`] — the one-extra-bit PRG of §5/§6: each processor holds `k`
//!   seed bits `x` plus a shared secret `b ∈ {0,1}^k` and outputs
//!   `(x, ⟨x, b⟩)`. Fools `j ≤ k/10` rounds with distance `O(jn/2^{k/9})`
//!   (Theorem 5.3).
//! * [`full`] — the complete matrix PRG of Theorem 1.3/§7:
//!   `x ↦ (x, xᵀM)` with a shared secret `M ∈ {0,1}^{k×(m−k)}` assembled
//!   from broadcast bits in `O(k·(m−k)/n)` rounds.
//! * [`derand`] — Corollary 7.1: the generic transform replacing `n`-bit
//!   private random tapes by PRG output, with measured round/bit accounting.
//! * [`newman`] — Appendix A: Newman-style reduction of *public* coins to
//!   `O(log T)` bits by pre-sampling `T` coin strings.
//! * [`attack`] — §8: the seed-length lower bound; every `(k, m)` PRG is
//!   broken in `k + 1` rounds by an image-membership test (an F₂ linear
//!   solve for our PRG).
//! * [`rank_hardness`] — Theorem 1.4: the first average-case lower bound in
//!   the model; full-rank detection on uniform matrices is hard because the
//!   toy PRG's output matrix (rank ≤ n−1) is indistinguishable from
//!   uniform.
//! * [`hierarchy`] — Theorem 1.5: the average-case time hierarchy; top
//!   `k×k` full-rank is solvable exactly in `k` rounds but not in `k/20`.

#![forbid(unsafe_code)]

pub mod attack;
pub mod derand;
pub mod full;
pub mod hierarchy;
pub mod newman;
pub mod rank_hardness;
pub mod toy;

pub use full::{MatrixPrg, PrgRun};
pub use toy::ToyPrg;
