//! Newman's theorem in the Broadcast Congested Clique (Appendix A,
//! Theorem A.1).
//!
//! Any public-coin protocol using `N` public random bits can be
//! `ε`-simulated by one using `O(kn + log m + log ε⁻¹)` public bits: fix
//! `T` pre-sampled coin strings `w₁…w_T`; at runtime draw a uniform index
//! (costing `log₂ T` public bits) and run the protocol with `w_index`.
//!
//! The construction is *non-constructive* in the paper (a good `T`-tuple
//! exists by Chernoff + union bound); here we sample the tuple and measure
//! the simulation error empirically — the measured error converging as
//! `1/√T` is exactly the Chernoff shape the proof uses. The contrast with
//! [`crate::derand`] is the paper's point: Newman saves *public* coins
//! but is computationally infeasible to make constructive, while the PRG
//! transform is efficient.

use bcc_congest::Network;
use bcc_f2::BitVec;
use rand::Rng;

/// A public-coin Broadcast Congested Clique protocol: deterministic given
/// one shared random string.
pub trait PublicCoinProtocol {
    /// The protocol's result.
    type Output;

    /// Public random bits consumed per execution.
    fn coin_bits(&self) -> usize;

    /// Executes with the given shared coins.
    fn run(&self, net: &mut Network, coins: &BitVec) -> Self::Output;
}

/// A Newman simulation: `T` pre-sampled coin strings.
#[derive(Debug, Clone)]
pub struct NewmanSimulation {
    tuples: Vec<BitVec>,
}

impl NewmanSimulation {
    /// Pre-samples `t` coin strings for a protocol with `coin_bits` coins.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0`.
    pub fn sample<R: Rng + ?Sized>(coin_bits: usize, t: usize, rng: &mut R) -> Self {
        assert!(t > 0, "need at least one coin string");
        NewmanSimulation {
            tuples: (0..t).map(|_| BitVec::random(rng, coin_bits)).collect(),
        }
    }

    /// The number of pre-sampled strings `T`.
    pub fn t(&self) -> usize {
        self.tuples.len()
    }

    /// Public bits the simulation consumes at runtime, `⌈log₂ T⌉`.
    pub fn runtime_coin_bits(&self) -> usize {
        (usize::BITS - (self.t() - 1).leading_zeros()) as usize
    }

    /// Runs the simulated protocol: draws an index with
    /// [`runtime_coin_bits`](NewmanSimulation::runtime_coin_bits) public
    /// bits and dispatches.
    pub fn run<P, R>(&self, protocol: &P, net: &mut Network, rng: &mut R) -> P::Output
    where
        P: PublicCoinProtocol,
        R: Rng + ?Sized,
    {
        let idx = rng.gen_range(0..self.t());
        protocol.run(net, &self.tuples[idx])
    }
}

/// Measures the simulation error on a *Boolean* statistic of the
/// protocol's output: `|Pr_sim[stat] − Pr_true[stat]|`, both estimated
/// with `trials` runs.
///
/// Theorem A.1 asserts a tuple exists making this at most `ε` for *all*
/// inputs and transcript events simultaneously once
/// `T = Θ(ε⁻²(nm + 2^{2kn}))`; a random tuple achieves the per-event
/// `1/√T` Chernoff bound this function observes.
pub fn simulation_error<P, R, F>(
    protocol: &P,
    sim: &NewmanSimulation,
    make_net: impl Fn() -> Network,
    stat: F,
    trials: usize,
    rng: &mut R,
) -> f64
where
    P: PublicCoinProtocol,
    R: Rng + ?Sized,
    F: Fn(&P::Output) -> bool,
{
    assert!(trials > 0, "need at least one trial");
    let mut hits_true = 0usize;
    let mut hits_sim = 0usize;
    for _ in 0..trials {
        let coins = BitVec::random(rng, protocol.coin_bits());
        let mut net = make_net();
        if stat(&protocol.run(&mut net, &coins)) {
            hits_true += 1;
        }
        let mut net = make_net();
        if stat(&sim.run(protocol, &mut net, rng)) {
            hits_sim += 1;
        }
    }
    (hits_true as f64 - hits_sim as f64).abs() / trials as f64
}

/// The paper's sufficient tuple size
/// `T = Θ(ε⁻²·(nm + 2^{2kn}))` — astronomically large in general, which
/// is the point of preferring the PRG transform; returned as `log₂ T` to
/// avoid overflow.
pub fn newman_tuple_size_log2(n: usize, m: usize, k: usize, eps: f64) -> f64 {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
    let inside = (n as f64 * m as f64) + 2f64.powf(2.0 * k as f64 * n as f64);
    (inside / (eps * eps)).log2()
}

/// **Remark A.2**: at least `Ω(k·n)` coins are required to ε-simulate a
/// `k`-round protocol whose `n` processors each output `k` uniform random
/// bits — the joint output entropy is `k·n` bits, and a protocol driven
/// by `c` coins has transcript-and-output entropy at most `c` (given the
/// inputs, everything is a function of the coins).
///
/// Returns the entropy lower bound on the coin count, `k·n`, so callers
/// can print it against the `O(kn + log m)` upper bound of Theorem A.1 —
/// tight up to the `log m` term.
pub fn remark_a_2_coin_lower_bound(n: usize, k: usize) -> usize {
    n * k
}

/// A demonstration public-coin protocol: AllEqual by random-parity
/// fingerprinting.
///
/// Inputs: each processor holds an `L`-bit string. With `s` shared random
/// vectors `r₁…r_s` (the public coins), every processor broadcasts
/// `⟨xᵢ, r_j⟩` for each `j` (s rounds); all accept iff all broadcasts agree
/// in every round. One-sided error: unequal inputs collide with
/// probability `2^{-s}`.
#[derive(Debug, Clone)]
pub struct AllEqual {
    /// Per-processor inputs, equal lengths.
    pub inputs: Vec<BitVec>,
    /// Number of fingerprint rounds `s`.
    pub repetitions: usize,
}

impl AllEqual {
    /// Whether all inputs are truly equal (ground truth).
    pub fn ground_truth(&self) -> bool {
        self.inputs.windows(2).all(|w| w[0] == w[1])
    }
}

impl PublicCoinProtocol for AllEqual {
    type Output = bool;

    fn coin_bits(&self) -> usize {
        self.repetitions * self.inputs[0].len()
    }

    fn run(&self, net: &mut Network, coins: &BitVec) -> bool {
        let n = net.model().n();
        assert_eq!(self.inputs.len(), n, "one input per processor");
        let len = self.inputs[0].len();
        let mut all_agree = true;
        for j in 0..self.repetitions {
            let r = coins.slice(j * len, (j + 1) * len);
            let messages: Vec<u64> = (0..n).map(|i| u64::from(self.inputs[i].dot(&r))).collect();
            let heard = net.broadcast_round(&messages);
            if heard.iter().any(|&m| m != heard[0]) {
                all_agree = false;
            }
        }
        all_agree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_congest::Model;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn equal_instance(n: usize, len: usize, reps: usize) -> AllEqual {
        AllEqual {
            inputs: vec![BitVec::ones(len); n],
            repetitions: reps,
        }
    }

    fn unequal_instance(rng: &mut StdRng, n: usize, len: usize, reps: usize) -> AllEqual {
        let mut inputs = vec![BitVec::random(rng, len); n];
        inputs[n - 1] = {
            let mut v = inputs[0].clone();
            v.flip(0);
            v
        };
        AllEqual {
            inputs,
            repetitions: reps,
        }
    }

    #[test]
    fn all_equal_accepts_equal_inputs_always() {
        let mut rng = StdRng::seed_from_u64(1);
        let proto = equal_instance(5, 16, 4);
        for _ in 0..50 {
            let coins = BitVec::random(&mut rng, proto.coin_bits());
            let mut net = Network::new(Model::bcast1(5));
            assert!(proto.run(&mut net, &coins));
            assert_eq!(net.rounds_used(), 4);
        }
    }

    #[test]
    fn all_equal_rejects_unequal_whp() {
        let mut rng = StdRng::seed_from_u64(2);
        let proto = unequal_instance(&mut rng, 5, 16, 8);
        assert!(!proto.ground_truth());
        let mut accepts = 0;
        for _ in 0..200 {
            let coins = BitVec::random(&mut rng, proto.coin_bits());
            let mut net = Network::new(Model::bcast1(5));
            if proto.run(&mut net, &coins) {
                accepts += 1;
            }
        }
        // Error probability 2^-8 per trial.
        assert!(accepts <= 5, "false accepts: {accepts}");
    }

    #[test]
    fn simulation_uses_few_coins() {
        let mut rng = StdRng::seed_from_u64(3);
        let sim = NewmanSimulation::sample(128, 1024, &mut rng);
        assert_eq!(sim.runtime_coin_bits(), 10);
    }

    #[test]
    fn simulation_error_shrinks_with_t() {
        let mut rng = StdRng::seed_from_u64(4);
        let proto = unequal_instance(&mut rng, 4, 12, 3);
        let trials = 3000;
        let mut errors = Vec::new();
        for t in [2usize, 256] {
            let sim = NewmanSimulation::sample(proto.coin_bits(), t, &mut rng);
            let err = simulation_error(
                &proto,
                &sim,
                || Network::new(Model::bcast1(4)),
                |&accepted| accepted,
                trials,
                &mut rng,
            );
            errors.push(err);
        }
        // T = 2 can misrepresent the 1/8 rejection-failure rate badly;
        // T = 256 cannot (beyond sampling noise).
        assert!(errors[1] < 0.05, "T=256 error {}", errors[1]);
    }

    #[test]
    fn tuple_size_is_astronomical_in_general() {
        // n = 8 processors, k = 2 rounds: log2 T ~ 2kn = 32 bits plus
        // slack; versus the PRG's poly-time construction.
        let log2_t = newman_tuple_size_log2(8, 64, 2, 0.01);
        assert!(log2_t > 32.0);
    }

    #[test]
    fn remark_a_2_brackets_theorem_a_1() {
        // The entropy lower bound kn sits below Theorem A.1's sufficient
        // O(kn + log m + log 1/eps) coin count — tight up to additive
        // logs. We compare against the log2 of the tuple count actually
        // needed at runtime (log2 T), using the kn-dominant regime.
        let (n, k, m) = (16usize, 4usize, 64usize);
        let lower = remark_a_2_coin_lower_bound(n, k);
        let upper_log2_t = newman_tuple_size_log2(n, m, k, 0.01);
        // Runtime coins = log2 T ≈ 2kn + O(log): within a factor ~2-3 of
        // the entropy bound kn.
        assert!(lower as f64 <= upper_log2_t);
        assert!(upper_log2_t <= 3.0 * lower as f64 + 40.0);
    }

    #[test]
    fn coin_entropy_argument_is_observable() {
        // A protocol that outputs its coins verbatim: with T sampled
        // strings its output entropy is capped at log2 T, visibly below
        // the kn bits of true randomness for small T.
        use bcc_stats::Dist;
        let mut rng = StdRng::seed_from_u64(9);
        let coin_bits = 12usize;
        let t = 4usize; // log2 T = 2 << 12
        let sim = NewmanSimulation::sample(coin_bits, t, &mut rng);
        struct Echo;
        impl PublicCoinProtocol for Echo {
            type Output = u64;
            fn coin_bits(&self) -> usize {
                12
            }
            fn run(&self, _net: &mut Network, coins: &BitVec) -> u64 {
                coins.to_u64()
            }
        }
        let outputs: Vec<u64> = (0..4000)
            .map(|_| {
                let mut net = Network::new(Model::bcast1(2));
                sim.run(&Echo, &mut net, &mut rng)
            })
            .collect();
        let entropy = Dist::uniform(outputs).entropy();
        assert!(
            entropy <= (t as f64).log2() + 1e-9,
            "simulated output entropy {entropy} must be capped at log2 T"
        );
    }

    #[test]
    fn simulation_preserves_completeness() {
        // On equal inputs both real and simulated protocols always accept.
        let mut rng = StdRng::seed_from_u64(5);
        let proto = equal_instance(4, 12, 3);
        let sim = NewmanSimulation::sample(proto.coin_bits(), 64, &mut rng);
        let err = simulation_error(
            &proto,
            &sim,
            || Network::new(Model::bcast1(4)),
            |&accepted| accepted,
            500,
            &mut rng,
        );
        assert_eq!(err, 0.0);
    }
}
