//! The average-case time hierarchy (Theorem 1.5).
//!
//! For `ω(log n) ≤ k ≤ n`, let `F_k` be the indicator that the top
//! `k × k` submatrix has full rank. A `k`-round `BCAST(1)` protocol
//! computes `F_k` *exactly*: in round `r` each of the first `k` processors
//! broadcasts bit `r` of its row, so after `k` rounds everyone holds the
//! whole block and finishes locally ([`solve_top_block`], with measured
//! round count). Yet any `k/20`-round protocol fails on uniform inputs
//! with probability above 1% — Theorem 1.4 scaled down to the block,
//! using the block-pseudo distribution of [`sample_block_pseudo`].

use bcc_congest::{Model, Network};
use bcc_f2::{gauss, BitMatrix, BitVec};
use rand::Rng;

/// The hierarchy function `F_k`: top `k × k` submatrix has full rank.
///
/// # Panics
///
/// Panics if `k` exceeds the matrix dimensions.
pub fn top_block_full_rank(m: &BitMatrix, k: usize) -> bool {
    assert!(
        k <= m.nrows() && k <= m.ncols(),
        "block exceeds matrix dimensions"
    );
    gauss::rank(&m.submatrix(k, k)) == k
}

/// The result of the exact upper-bound protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyRun {
    /// The computed value of `F_k` (known to every processor).
    pub value: bool,
    /// `BCAST(1)` rounds consumed — exactly `k`.
    pub rounds_used: usize,
}

/// The `k`-round exact protocol: processor `i < k` broadcasts its first
/// `k` row bits (one per round); everyone reconstructs the block and
/// computes its rank locally.
///
/// # Panics
///
/// Panics if `rows.len() < k` or any row is shorter than `k`.
pub fn solve_top_block(rows: &[BitVec], k: usize) -> HierarchyRun {
    let n = rows.len();
    assert!(k <= n, "need at least k processors");
    let mut net = Network::new(Model::bcast1(n));
    let payloads: Vec<BitVec> = rows
        .iter()
        .enumerate()
        .map(|(i, row)| {
            if i < k {
                assert!(row.len() >= k, "row shorter than k bits");
                row.slice(0, k)
            } else {
                BitVec::zeros(k)
            }
        })
        .collect();
    let rounds = net.broadcast_bits(&payloads);
    let heard = net.collect_bits(rounds, k);
    let block = BitMatrix::from_rows(heard[..k].to_vec(), k);
    HierarchyRun {
        value: gauss::rank(&block) == k,
        rounds_used: net.rounds_used(),
    }
}

/// Samples the block-pseudo distribution: the top `k × k` block is the toy
/// PRG's output (rows `(xᵢ, ⟨xᵢ, b⟩)`, rank ≤ k − 1 always) and everything
/// else is uniform. Indistinguishable from uniform by `k/20`-round
/// protocols, yet `F_k` is identically false on it.
///
/// # Panics
///
/// Panics if `k < 2` or `k > n`.
pub fn sample_block_pseudo<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> BitMatrix {
    assert!(k >= 2, "need k >= 2");
    assert!(k <= n, "block exceeds matrix dimension");
    let b = BitVec::random(rng, k - 1);
    let rows = (0..n)
        .map(|i| {
            if i < k {
                let x = BitVec::random(rng, k - 1);
                let y = x.dot(&b);
                let block_part = x.concat(&BitVec::from_bools(&[y]));
                block_part.concat(&BitVec::random(rng, n - k))
            } else {
                BitVec::random(rng, n)
            }
        })
        .collect();
    BitMatrix::from_rows(rows, n)
}

/// One row of the hierarchy-experiment table: the round budget of the
/// upper bound versus the budget the lower bound rules out.
#[derive(Debug, Clone, Copy)]
pub struct HierarchyPoint {
    /// The parameter `k`.
    pub k: usize,
    /// Rounds used by the exact protocol (equals `k`).
    pub exact_rounds: usize,
    /// The budget Theorem 1.5 rules out (`k / 20`).
    pub hard_budget: usize,
    /// `Pr[F_k = 1]` on uniform inputs (→ `Q₀`).
    pub uniform_true_rate: f64,
}

/// Measures one hierarchy point at dimension `n`.
pub fn hierarchy_point<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    k: usize,
    trials: usize,
) -> HierarchyPoint {
    assert!(trials > 0, "need at least one trial");
    let mut true_count = 0usize;
    let mut exact_rounds = 0usize;
    for _ in 0..trials {
        let m = BitMatrix::random(rng, n, n);
        let rows: Vec<BitVec> = m.iter_rows().cloned().collect();
        let run = solve_top_block(&rows, k);
        exact_rounds = run.rounds_used;
        assert_eq!(run.value, top_block_full_rank(&m, k), "protocol is exact");
        if run.value {
            true_count += 1;
        }
    }
    HierarchyPoint {
        k,
        exact_rounds,
        hard_budget: k / 20,
        uniform_true_rate: true_count as f64 / trials as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_f2::rank_dist::full_rank_probability;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn protocol_is_exact_and_uses_k_rounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..30 {
            let n = 12;
            let k = 6;
            let m = BitMatrix::random(&mut rng, n, n);
            let rows: Vec<BitVec> = m.iter_rows().cloned().collect();
            let run = solve_top_block(&rows, k);
            assert_eq!(run.value, top_block_full_rank(&m, k));
            assert_eq!(run.rounds_used, k);
        }
    }

    #[test]
    fn block_pseudo_never_full_rank() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..40 {
            let m = sample_block_pseudo(&mut rng, 16, 8);
            assert!(!top_block_full_rank(&m, 8));
        }
    }

    #[test]
    fn block_pseudo_rest_is_unbiased() {
        // Entries outside the block keep fair-coin marginals.
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 3000;
        let mut ones = 0usize;
        for _ in 0..trials {
            let m = sample_block_pseudo(&mut rng, 10, 4);
            if m.get(7, 7) {
                ones += 1;
            }
        }
        let rate = ones as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.04, "rate {rate}");
    }

    #[test]
    fn uniform_true_rate_matches_block_law() {
        let mut rng = StdRng::seed_from_u64(4);
        let point = hierarchy_point(&mut rng, 12, 8, 1500);
        let expect = full_rank_probability(8);
        assert!(
            (point.uniform_true_rate - expect).abs() < 0.05,
            "{} vs {expect}",
            point.uniform_true_rate
        );
        assert_eq!(point.exact_rounds, 8);
        assert_eq!(point.hard_budget, 0);
    }

    #[test]
    fn hierarchy_separation_grows_with_k() {
        let mut rng = StdRng::seed_from_u64(5);
        let p40 = hierarchy_point(&mut rng, 44, 40, 20);
        assert_eq!(p40.exact_rounds, 40);
        assert_eq!(p40.hard_budget, 2);
        assert!(p40.exact_rounds > 10 * p40.hard_budget);
    }
}
