//! The toy PRG (§5, §6): one extra pseudorandom bit per processor.
//!
//! Each processor holds `k` private seed bits `x ∈ {0,1}^k`; a shared
//! secret `b ∈ {0,1}^k` turns them into `k + 1` output bits `(x, ⟨x,b⟩)`.
//! `U_{[b]}` denotes the uniform distribution on `{(x, x·b)}` — processor
//! inputs under the PRG; case (A) of Theorems 5.1/5.3 is `U_{k+1}`.
//!
//! The module provides the generator itself, the row supports that plug the
//! two cases into the exact engine, and executable forms of Lemma 6.1 and
//! Claim 5.

use bcc_core::{ProductInput, RowSupport};
use bcc_f2::BitVec;
use bcc_stats::TruthTable;
use rand::Rng;

/// The one-extra-bit PRG: seed `k` bits per processor plus a shared secret
/// `b`, output `k + 1` bits per processor.
///
/// # Example
///
/// ```
/// use bcc_prg::ToyPrg;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let prg = ToyPrg::new(4, 8);
/// let mut rng = StdRng::seed_from_u64(7);
/// let run = prg.run(&mut rng);
/// assert_eq!(run.outputs.len(), 4);
/// assert_eq!(run.outputs[0].len(), 9); // k + 1
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ToyPrg {
    n: usize,
    k: u32,
}

/// The outcome of one toy-PRG execution.
#[derive(Debug, Clone)]
pub struct ToyRun {
    /// The shared secret vector `b`.
    pub secret: BitVec,
    /// Each processor's `k + 1` pseudorandom bits `(x, ⟨x,b⟩)`.
    pub outputs: Vec<BitVec>,
}

impl ToyPrg {
    /// A toy PRG for `n` processors with `k` seed bits each.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k == 0`.
    pub fn new(n: usize, k: u32) -> Self {
        assert!(n > 0, "need at least one processor");
        assert!(k > 0, "need at least one seed bit");
        ToyPrg { n, k }
    }

    /// Seed bits per processor (`k`; the shared `b` costs `k` more once,
    /// or `k/n` each when broadcast jointly).
    pub fn seed_bits(&self) -> u32 {
        self.k
    }

    /// Output bits per processor (`k + 1`).
    pub fn output_bits(&self) -> u32 {
        self.k + 1
    }

    /// Samples the secret and all processors' outputs.
    pub fn run<R: Rng + ?Sized>(&self, rng: &mut R) -> ToyRun {
        let secret = BitVec::random(rng, self.k as usize);
        let outputs = (0..self.n)
            .map(|_| {
                let x = BitVec::random(rng, self.k as usize);
                let extra = x.dot(&secret);
                x.concat(&BitVec::from_bools(&[extra]))
            })
            .collect();
        if let Some(obs) = bcc_obs::current() {
            obs.add("prg.blocks_drawn", bcc_obs::Class::Work, self.n as u64);
        }
        ToyRun { secret, outputs }
    }
}

/// The support of `U_{[b]}` as packed `(k+1)`-bit points: `x` in the low
/// `k` bits, `⟨x,b⟩` in bit `k`.
///
/// # Panics
///
/// Panics if `k > 24` (the support is enumerated).
pub fn row_support(k: u32, b: u64) -> RowSupport {
    assert!(k <= 24, "support too large to enumerate");
    let points = (0..(1u64 << k)).map(|x| x | (parity(x & b) << k)).collect();
    if let Some(obs) = bcc_obs::current() {
        obs.add("prg.support_points", bcc_obs::Class::Work, 1u64 << k);
    }
    RowSupport::explicit(k + 1, points)
}

/// Case (B) of Theorem 5.3 for a fixed secret `b`: every one of `n`
/// processors independently uniform on `U_{[b]}` (one shared support
/// allocation, not `n` copies).
pub fn pseudo_input(n: usize, k: u32, b: u64) -> ProductInput {
    ProductInput::repeated(row_support(k, b), n)
}

/// Case (A): every processor uniform on `{0,1}^{k+1}`.
pub fn uniform_input(n: usize, k: u32) -> ProductInput {
    ProductInput::uniform(n, k + 1)
}

/// The full decomposition family: one member per secret `b ∈ {0,1}^k`.
///
/// # Panics
///
/// Panics if `k > 12` (the family has `2^k` members).
pub fn family(n: usize, k: u32) -> Vec<ProductInput> {
    assert!(k <= 12, "family too large to enumerate");
    (0..(1u64 << k)).map(|b| pseudo_input(n, k, b)).collect()
}

/// **Lemma 6.1**, evaluated exactly: for `f : {0,1}^{k+1} → {0,1}` and a
/// domain `D`, returns `E_{b∼U_k} ‖f(U_{[b],D}) − f(U_{k+1,D})‖`.
///
/// The lemma asserts this is `≤ 2^{-k/9}` whenever `|D| ≥ 2^{k/2}`. Points
/// of `D` are packed `(k+1)`-bit values. Per the paper's footnote, when
/// `U_{[b]}` has no mass on `D` the conditional is taken to be `U_D`
/// itself, contributing distance 0.
///
/// # Panics
///
/// Panics if `D` is empty or `k > 20`.
pub fn lemma_6_1_mean(k: u32, f: &TruthTable, domain: &[u64]) -> f64 {
    assert!(!domain.is_empty(), "domain must be non-empty");
    assert!(k <= 20, "secret space too large to enumerate");
    assert_eq!(f.arity(), k + 1, "f must take k+1 bits");
    let mean_d = f
        .mean_on_domain(domain)
        .expect("non-empty domain has a mean");
    let mut total = 0.0;
    for b in 0..(1u64 << k) {
        let restricted: Vec<u64> = domain
            .iter()
            .copied()
            .filter(|&p| on_coset(p, b, k))
            .collect();
        let dist = match f.mean_on_domain(&restricted) {
            Some(mean_b) => (mean_b - mean_d).abs(),
            None => 0.0,
        };
        total += dist;
    }
    total / (1u64 << k) as f64
}

/// **Claim 5**, evaluated exactly: the distribution of `N_b / N_D` over
/// secrets `b`, where `N_D = |D|` and `N_b = |D ∩ supp U_{[b]}|`. Returns
/// `(mean of |N_b/N_D − 1/2|, max of |N_b/N_D − 1/2|)`.
///
/// The claim asserts the deviation exceeds `2^{-k/8}` with probability at
/// most `2^{-k/8}`.
pub fn claim_5_deviations(k: u32, domain: &[u64]) -> (f64, f64) {
    assert!(!domain.is_empty(), "domain must be non-empty");
    let nd = domain.len() as f64;
    let mut sum = 0.0;
    let mut max: f64 = 0.0;
    for b in 0..(1u64 << k) {
        let nb = domain.iter().filter(|&&p| on_coset(p, b, k)).count() as f64;
        let dev = (nb / nd - 0.5).abs();
        sum += dev;
        max = max.max(dev);
    }
    (sum / (1u64 << k) as f64, max)
}

/// Whether the packed point `p = (x, y)` lies on the coset of secret `b`,
/// i.e. `y = ⟨x, b⟩`.
fn on_coset(p: u64, b: u64, k: u32) -> bool {
    let x = p & ((1u64 << k) - 1);
    let y = (p >> k) & 1;
    parity(x & b) == y
}

fn parity(x: u64) -> u64 {
    (x.count_ones() % 2) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_congest::FnProtocol;
    use bcc_core::exec::{Estimator, ExactEstimator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn outputs_satisfy_linear_relation() {
        let prg = ToyPrg::new(6, 10);
        let mut rng = StdRng::seed_from_u64(1);
        let run = prg.run(&mut rng);
        for out in &run.outputs {
            let x = out.slice(0, 10);
            assert_eq!(out.get(10), x.dot(&run.secret));
        }
    }

    #[test]
    fn row_support_size_and_membership() {
        let r = row_support(5, 0b10110);
        assert_eq!(r.len(), 32);
        for &p in r.points() {
            assert!(on_coset(p, 0b10110, 5));
        }
    }

    #[test]
    fn supports_partition_the_cube_in_pairs() {
        // For any x, exactly one of (x,0),(x,1) is on the coset.
        let r = row_support(4, 0b1010);
        let xs: std::collections::BTreeSet<u64> = r.points().iter().map(|&p| p & 0xF).collect();
        assert_eq!(xs.len(), 16);
    }

    #[test]
    fn family_has_all_secrets() {
        let fam = family(2, 3);
        assert_eq!(fam.len(), 8);
    }

    #[test]
    fn one_round_distance_obeys_theorem_5_1() {
        // Theorem 5.1: ||P_rand - avg_b P_[b]|| <= O(n / 2^{k/2}).
        // Exact mixture walk with a parity-style protocol, n = 4, k = 6.
        let (n, k) = (4usize, 6u32);
        let proto = FnProtocol::new(n, k + 1, n as u32, |_, input, tr| {
            // Broadcast a transcript-dependent parity of the input.
            let mask = 0x55u64 ^ tr.as_u64();
            (input & mask).count_ones() % 2 == 1
        });
        let members = family(n, k);
        let baseline = uniform_input(n, k);
        let cmp = ExactEstimator::default().estimate_full(&proto, &members, &baseline);
        let bound = n as f64 / 2f64.powf(k as f64 / 2.0);
        assert!(
            cmp.tv() <= bound,
            "mixture distance {} above O(n/2^(k/2)) = {bound}",
            cmp.tv()
        );
        // The progress function also obeys the per-turn bound t·2^{-k/2}.
        for (t, p) in cmp.progress_by_depth.iter().enumerate() {
            assert!(
                *p <= t as f64 * 2f64.powf(-(k as f64) / 2.0) + 1e-9,
                "turn {t}: progress {p}"
            );
        }
    }

    #[test]
    fn secret_revealing_protocol_distinguishes_one_b() {
        // A protocol that knows b* can distinguish U_[b*] from uniform:
        // broadcast whether the extra bit matches <x, b*>.
        let k = 5u32;
        let bstar = 0b10011u64;
        let proto = FnProtocol::new(1, k + 1, 1, move |_, input, _| on_coset(input, bstar, k));
        let pseudo = pseudo_input(1, k, bstar);
        let baseline = uniform_input(1, k);
        let cmp = ExactEstimator::default().estimate_pair(&proto, &pseudo, &baseline);
        assert!((cmp.tv() - 0.5).abs() < 1e-12, "tv = {}", cmp.tv());
    }

    #[test]
    fn lemma_6_1_on_full_domain() {
        let k = 8u32;
        let domain: Vec<u64> = (0..(1u64 << (k + 1))).collect();
        let mut rng = StdRng::seed_from_u64(2);
        for f in [
            TruthTable::majority(k + 1),
            TruthTable::random(&mut rng, k + 1),
            TruthTable::parity(k + 1, (1 << (k + 1)) - 1),
        ] {
            let mean = lemma_6_1_mean(k, &f, &domain);
            let bound = 2f64.powf(-(k as f64) / 9.0);
            assert!(mean <= bound, "{mean} > 2^(-k/9) = {bound}");
        }
    }

    #[test]
    fn lemma_6_1_on_restricted_domain() {
        // |D| = 2^{k/2} exactly at the lemma's threshold.
        let k = 8u32;
        let mut rng = StdRng::seed_from_u64(3);
        let full: Vec<u64> = (0..(1u64 << (k + 1))).collect();
        // Random domain of size 2^{k-1} (well above 2^{k/2}).
        let mut domain = full.clone();
        for i in (1..domain.len()).rev() {
            let j = rng.gen_range(0..=i);
            domain.swap(i, j);
        }
        domain.truncate(1 << (k - 1));
        domain.sort_unstable();
        let f = TruthTable::random(&mut rng, k + 1);
        let mean = lemma_6_1_mean(k, &f, &domain);
        assert!(mean <= 2f64.powf(-(k as f64) / 9.0) * 2.0, "mean {mean}");
    }

    #[test]
    fn claim_5_balance() {
        let k = 10u32;
        let mut rng = StdRng::seed_from_u64(4);
        let mut domain: Vec<u64> = (0..(1u64 << (k + 1)))
            .filter(|_| rng.gen::<f64>() < 0.4)
            .collect();
        domain.sort_unstable();
        let (mean_dev, _max_dev) = claim_5_deviations(k, &domain);
        // Mean deviation should be tiny (Claim 5: below ~2^{-k/8} except
        // with small probability).
        assert!(mean_dev < 0.05, "mean deviation {mean_dev}");
    }

    #[test]
    fn claim_5_worst_case_domain_is_balanced_too() {
        // Even the coset of a fixed secret as the domain: N_b/N_D deviates
        // fully only at b = b* and its complement-ish values.
        let k = 8u32;
        let domain: Vec<u64> = row_support(k, 0b1011).points().to_vec();
        let (mean_dev, max_dev) = claim_5_deviations(k, &domain);
        assert!((max_dev - 0.5).abs() < 1e-12, "b = b* is fully biased");
        assert!(mean_dev < 0.01, "but on average balance holds: {mean_dev}");
    }

    #[test]
    fn multi_round_distance_small_for_natural_protocols() {
        // Theorem 5.3 shape: j rounds, distance O(jn/2^{k/9}).
        let (n, k, j) = (3usize, 7u32, 2u32);
        let proto = FnProtocol::new(n, k + 1, j * n as u32, |proc, input, tr| {
            let mask = (0x6D ^ (tr.as_u64() << 1) ^ proc as u64) & 0xFF;
            (input & mask).count_ones() % 2 == 1
        });
        let mut rng = StdRng::seed_from_u64(5);
        // Sampled over random secrets (the full family is 128 members;
        // average exact distance over a few).
        let baseline = uniform_input(n, k);
        let mut total = 0.0;
        let trials = 16;
        for _ in 0..trials {
            let b = rng.gen::<u64>() & ((1 << k) - 1);
            let cmp =
                ExactEstimator::default().estimate_pair(&proto, &pseudo_input(n, k, b), &baseline);
            total += cmp.tv();
        }
        let avg = total / trials as f64;
        let bound = 2.0 * (j * n as u32) as f64 / 2f64.powf(k as f64 / 9.0);
        assert!(avg <= bound, "avg distance {avg} above {bound}");
    }

    #[test]
    fn generators_count_blocks_and_support_points_when_observed() {
        let registry = bcc_obs::Registry::new();
        {
            let _scope = registry.install();
            let mut rng = StdRng::seed_from_u64(11);
            let _ = ToyPrg::new(5, 4).run(&mut rng); // 5 blocks
            let _ = row_support(6, 0b10_1010); // 2^6 support points
        }
        let snapshot = registry.snapshot();
        let counter = |name: &str| {
            snapshot
                .work
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        assert_eq!(counter("prg.blocks_drawn"), Some(5));
        assert_eq!(counter("prg.support_points"), Some(64));
    }
}
