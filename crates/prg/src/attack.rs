//! The seed-length lower bound (§8, Theorem 8.1).
//!
//! Any PRG giving each of `n` processors a length-`m` pseudorandom string
//! from `k`-bit seeds is broken in `k + 1` rounds: everyone broadcasts
//! their first `k + 1` output bits; the transcript is one of at most
//! `2^{nk}` options in the pseudorandom case versus `2^{n(k+1)}` in the
//! truly random case, so an image-membership test distinguishes with all
//! but exponentially small error.
//!
//! For the matrix PRG the image-membership test is concrete and cheap: the
//! broadcast bits are `(xᵢ, ⟨xᵢ, m₁⟩)` with `m₁` the first column of the
//! secret matrix, so consistency is solvability of the F₂ linear system
//! `X·m₁ = y` — [`bcc_f2::gauss::is_consistent`].

use bcc_congest::{Model, Network};
use bcc_f2::{gauss, BitMatrix, BitVec};
use rand::Rng;

use crate::full::MatrixPrg;

/// The attack's verdict on one broadcast transcript.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The transcript lies in the PRG's image: output "pseudorandom".
    Pseudorandom,
    /// The transcript is outside the image: output "random".
    Random,
}

/// The result of running the attack protocol once.
#[derive(Debug, Clone)]
pub struct AttackRun {
    /// The verdict.
    pub verdict: Verdict,
    /// `BCAST(1)` rounds consumed (`k + 1`).
    pub rounds_used: usize,
}

/// Runs the §8 attack against the matrix PRG on given per-processor output
/// strings (each at least `k + 1` bits).
///
/// Every processor broadcasts its first `k + 1` bits; all processors then
/// locally test image membership by solving `X·m₁ = y`.
///
/// # Panics
///
/// Panics if `outputs` is empty or an output string is shorter than
/// `k + 1` bits.
pub fn attack_matrix_prg(k: u32, outputs: &[BitVec]) -> AttackRun {
    let n = outputs.len();
    assert!(n > 0, "need at least one processor");
    let mut net = Network::new(Model::bcast1(n));
    // Broadcast the first k+1 pseudorandom bits of every processor.
    let payloads: Vec<BitVec> = outputs
        .iter()
        .map(|o| {
            assert!(o.len() > k as usize, "output shorter than k + 1 bits");
            o.slice(0, k as usize + 1)
        })
        .collect();
    let rounds = net.broadcast_bits(&payloads);
    let heard = net.collect_bits(rounds, k as usize + 1);

    // Local test: does some m₁ satisfy <x_i, m₁> = y_i for all i?
    let x_rows: Vec<BitVec> = heard.iter().map(|b| b.slice(0, k as usize)).collect();
    let y: BitVec = heard.iter().map(|b| b.get(k as usize)).collect();
    let x = BitMatrix::from_rows(x_rows, k as usize);
    let verdict = if gauss::is_consistent(&x, &y) {
        Verdict::Pseudorandom
    } else {
        Verdict::Random
    };
    AttackRun {
        verdict,
        rounds_used: net.rounds_used(),
    }
}

/// The measured distinguishing performance of the attack.
#[derive(Debug, Clone)]
pub struct AttackAdvantage {
    /// Fraction of pseudorandom inputs classified pseudorandom (always 1).
    pub true_positive_rate: f64,
    /// Fraction of uniform inputs (mis)classified pseudorandom.
    pub false_positive_rate: f64,
    /// The distinguishing advantage `(TPR − FPR) / 2` (footnote 5 scale).
    pub advantage: f64,
    /// Rounds used per run.
    pub rounds_used: usize,
}

/// Measures the attack's advantage over `trials` trials of each case.
///
/// Theorem 8.1 predicts `TPR = 1` and `FPR = E[2^{rank(X)−n}]` (tiny), so
/// the advantage approaches its maximum `1/2` — the attack distinguishes
/// with all but exponentially small error.
pub fn measure_attack<R: Rng + ?Sized>(
    prg: &MatrixPrg,
    trials: usize,
    rng: &mut R,
) -> AttackAdvantage {
    assert!(trials > 0, "need at least one trial");
    let k = prg.k();
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut rounds = 0usize;
    for _ in 0..trials {
        // Pseudorandom case.
        let run = prg.run(rng);
        let res = attack_matrix_prg(k, &run.outputs);
        rounds = res.rounds_used;
        if res.verdict == Verdict::Pseudorandom {
            tp += 1;
        }
        // Truly random case.
        let uniform: Vec<BitVec> = (0..prg.n())
            .map(|_| BitVec::random(rng, prg.m() as usize))
            .collect();
        if attack_matrix_prg(k, &uniform).verdict == Verdict::Pseudorandom {
            fp += 1;
        }
    }
    let tpr = tp as f64 / trials as f64;
    let fpr = fp as f64 / trials as f64;
    AttackAdvantage {
        true_positive_rate: tpr,
        false_positive_rate: fpr,
        advantage: (tpr - fpr) / 2.0,
        rounds_used: rounds,
    }
}

/// The exact false-positive probability of the consistency test on uniform
/// inputs: `E[2^{rank(X) − n}]` over a uniform `n × k` matrix `X` (given
/// `X`, a uniform `y` is consistent iff it lies in the rank-dimensional
/// column space of `X`).
pub fn exact_false_positive_rate(n: usize, k: usize) -> f64 {
    bcc_f2::rank_dist::rank_pmf(n, k)
        .iter()
        .enumerate()
        .map(|(r, p)| p * 2f64.powi(r as i32 - n as i32))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pseudorandom_always_accepted() {
        let prg = MatrixPrg::new(10, 6, 20).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let run = prg.run(&mut rng);
            let res = attack_matrix_prg(6, &run.outputs);
            assert_eq!(res.verdict, Verdict::Pseudorandom);
        }
    }

    #[test]
    fn rounds_are_k_plus_one() {
        let prg = MatrixPrg::new(5, 7, 12).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let run = prg.run(&mut rng);
        let res = attack_matrix_prg(7, &run.outputs);
        assert_eq!(res.rounds_used, 8);
    }

    #[test]
    fn uniform_rarely_accepted() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 12;
        let k = 6u32;
        let mut accepted = 0;
        let trials = 400;
        for _ in 0..trials {
            let uniform: Vec<BitVec> = (0..n).map(|_| BitVec::random(&mut rng, 10)).collect();
            if attack_matrix_prg(k, &uniform).verdict == Verdict::Pseudorandom {
                accepted += 1;
            }
        }
        let fpr = accepted as f64 / trials as f64;
        let exact = exact_false_positive_rate(n, k as usize);
        assert!(fpr < 0.1, "fpr {fpr}");
        assert!((fpr - exact).abs() < 0.05, "fpr {fpr} vs exact {exact}");
    }

    #[test]
    fn advantage_near_max() {
        let prg = MatrixPrg::new(14, 6, 16).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let adv = measure_attack(&prg, 200, &mut rng);
        assert_eq!(adv.true_positive_rate, 1.0);
        assert!(adv.false_positive_rate < 0.05);
        assert!(adv.advantage > 0.45, "advantage {}", adv.advantage);
        assert_eq!(adv.rounds_used, 7);
    }

    #[test]
    fn exact_fpr_decreases_with_n() {
        let a = exact_false_positive_rate(4, 6);
        let b = exact_false_positive_rate(8, 6);
        let c = exact_false_positive_rate(16, 6);
        assert!(a > b && b > c);
    }

    #[test]
    fn exact_fpr_matches_simulation() {
        let mut rng = StdRng::seed_from_u64(5);
        let (n, k) = (6usize, 4u32);
        let trials = 4000;
        let mut accepted = 0;
        for _ in 0..trials {
            let uniform: Vec<BitVec> = (0..n).map(|_| BitVec::random(&mut rng, 5)).collect();
            if attack_matrix_prg(k, &uniform).verdict == Verdict::Pseudorandom {
                accepted += 1;
            }
        }
        let fpr = accepted as f64 / trials as f64;
        let exact = exact_false_positive_rate(n, k as usize);
        assert!((fpr - exact).abs() < 0.03, "{fpr} vs {exact}");
    }
}
