//! Empirical estimation with explicit confidence bounds.
//!
//! The exact transcript engine covers small instances; everything larger is
//! estimated by sampling. Every estimate carries a Hoeffding confidence
//! radius so experiment tables can print `value ± ci`.

use std::collections::BTreeMap;

use crate::dist::Dist;

/// A running mean of a `[0, 1]`-bounded statistic with Hoeffding bounds.
///
/// # Example
///
/// ```
/// use bcc_stats::sampling::MeanEstimator;
///
/// let mut est = MeanEstimator::new();
/// for i in 0..1000 { est.push(f64::from(i % 2 == 0)); }
/// assert!((est.mean() - 0.5).abs() < 1e-9);
/// assert!(est.hoeffding_radius(0.01) < 0.06);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MeanEstimator {
    sum: f64,
    count: usize,
}

impl MeanEstimator {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        MeanEstimator::default()
    }

    /// Adds an observation in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the observation is outside `[0, 1]` (Hoeffding's bound
    /// assumes bounded observations).
    pub fn push(&mut self, x: f64) {
        assert!((0.0..=1.0).contains(&x), "observation must be in [0,1]");
        self.sum += x;
        self.count += 1;
    }

    /// The number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The sample mean.
    ///
    /// # Panics
    ///
    /// Panics if no observations were pushed.
    pub fn mean(&self) -> f64 {
        assert!(self.count > 0, "mean of zero observations");
        self.sum / self.count as f64
    }

    /// Radius `r` such that `|mean − E| ≤ r` with probability `≥ 1 − delta`
    /// by Hoeffding's inequality: `r = sqrt(ln(2/δ) / (2·count))`.
    ///
    /// # Panics
    ///
    /// Panics if `delta ∉ (0, 1)` or no observations were pushed.
    pub fn hoeffding_radius(&self, delta: f64) -> f64 {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        assert!(self.count > 0, "radius of zero observations");
        ((2.0 / delta).ln() / (2.0 * self.count as f64)).sqrt()
    }
}

/// Builds the empirical distribution of `samples`.
pub fn empirical_dist<T: Ord + Clone>(samples: &[T]) -> Dist<T> {
    assert!(!samples.is_empty(), "no samples");
    Dist::from_weights(samples.iter().map(|s| (s.clone(), 1.0)))
}

/// Estimates total-variation distance between two sampled distributions via
/// their empirical histograms.
///
/// This estimator is *upward* biased by sampling noise (≈ `sqrt(K/N)` for
/// support size `K`); use only when the support is small relative to the
/// sample count, which all our transcript experiments respect.
pub fn empirical_tv<T: Ord + Clone>(a: &[T], b: &[T]) -> f64 {
    empirical_dist(a).tv_distance(&empirical_dist(b))
}

/// Counts occurrences of each value.
pub fn histogram<T: Ord + Clone, I: IntoIterator<Item = T>>(samples: I) -> BTreeMap<T, usize> {
    let mut h = BTreeMap::new();
    for s in samples {
        *h.entry(s).or_insert(0) += 1;
    }
    h
}

/// The number of samples needed so Hoeffding's radius at confidence
/// `1 − delta` is at most `eps`.
pub fn hoeffding_sample_size(eps: f64, delta: f64) -> usize {
    assert!(eps > 0.0, "eps must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    ((2.0 / delta).ln() / (2.0 * eps * eps)).ceil() as usize
}

/// The advantage of a binary distinguisher from empirical acceptance rates:
/// `|Pr[accept | D₁] − Pr[accept | D₂]| / 2`.
///
/// Matches the paper's footnote 5: an algorithm distinguishing with
/// advantage `ε` guesses the source with probability `1/2 + ε`; for an
/// accept/reject test that ε is half the acceptance-rate gap.
pub fn distinguisher_advantage(accept_rate_d1: f64, accept_rate_d2: f64) -> f64 {
    (accept_rate_d1 - accept_rate_d2).abs() / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn mean_estimator_basic() {
        let mut e = MeanEstimator::new();
        e.push(0.0);
        e.push(1.0);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hoeffding_radius_shrinks() {
        let mut e = MeanEstimator::new();
        for _ in 0..100 {
            e.push(0.5);
        }
        let r100 = e.hoeffding_radius(0.05);
        for _ in 0..900 {
            e.push(0.5);
        }
        let r1000 = e.hoeffding_radius(0.05);
        assert!(r1000 < r100);
        assert!((r100 / r1000 - (10f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn hoeffding_radius_is_valid_bound() {
        // Empirical coverage check: the true mean is inside mean ± r at
        // least 1 - delta of the time.
        let mut rng = StdRng::seed_from_u64(1);
        let mut covered = 0;
        let trials = 200;
        for _ in 0..trials {
            let mut e = MeanEstimator::new();
            for _ in 0..200 {
                e.push(f64::from(rng.gen::<f64>() < 0.3));
            }
            let r = e.hoeffding_radius(0.05);
            if (e.mean() - 0.3).abs() <= r {
                covered += 1;
            }
        }
        assert!(covered as f64 / trials as f64 >= 0.95);
    }

    #[test]
    fn empirical_tv_of_identical_sets_is_zero() {
        let a = vec![1u8, 2, 2, 3];
        assert_eq!(empirical_tv(&a, &a), 0.0);
    }

    #[test]
    fn empirical_tv_converges() {
        let mut rng = StdRng::seed_from_u64(2);
        // D1 = Bernoulli(0.5), D2 = Bernoulli(0.8): TV = 0.3.
        let a: Vec<bool> = (0..50_000).map(|_| rng.gen::<f64>() < 0.5).collect();
        let b: Vec<bool> = (0..50_000).map(|_| rng.gen::<f64>() < 0.8).collect();
        assert!((empirical_tv(&a, &b) - 0.3).abs() < 0.02);
    }

    #[test]
    fn histogram_counts() {
        let h = histogram(vec![1u8, 1, 2]);
        assert_eq!(h[&1], 2);
        assert_eq!(h[&2], 1);
    }

    #[test]
    fn sample_size_matches_radius() {
        let n = hoeffding_sample_size(0.01, 0.05);
        let mut e = MeanEstimator::new();
        for _ in 0..n {
            e.push(0.0);
        }
        assert!(e.hoeffding_radius(0.05) <= 0.01 + 1e-9);
    }

    #[test]
    fn advantage_halves_gap() {
        assert!((distinguisher_advantage(0.9, 0.1) - 0.4).abs() < 1e-12);
        assert_eq!(distinguisher_advantage(0.5, 0.5), 0.0);
    }
}
