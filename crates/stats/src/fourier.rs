//! Fourier analysis on the Boolean cube (§2.2 of the paper).
//!
//! For `f : {0,1}^n → ℝ` the Fourier coefficient at `S ⊆ [n]` is
//! `f̂(S) = E_{x∼U_n}[f(x)·(−1)^{Σ_{i∈S} x_i}]`, and Parseval's identity
//! states `E[f(x)²] = Σ_S f̂(S)²`. The PRG analysis (Lemma 5.2) is exactly
//! an application of Parseval to coefficients indexed by the secret vector
//! `b`; [`parseval_check`] and the tests make the identity executable.

/// The fast Walsh–Hadamard transform, in place.
///
/// On input `values[x] = f(x)` (indexed by the packed point `x`), produces
/// `values[s] = Σ_x f(x)·(−1)^{⟨s,x⟩}`. Dividing by `2^n` yields the Fourier
/// coefficients `f̂(S)`. Self-inverse up to the factor `2^n`.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn walsh_hadamard(values: &mut [f64]) {
    let n = values.len();
    assert!(n.is_power_of_two(), "length must be a power of two");
    let mut h = 1;
    while h < n {
        for chunk in values.chunks_mut(2 * h) {
            for i in 0..h {
                let (a, b) = (chunk[i], chunk[i + h]);
                chunk[i] = a + b;
                chunk[i + h] = a - b;
            }
        }
        h *= 2;
    }
}

/// All Fourier coefficients of `f : {0,1}^n → ℝ` given as a table indexed by
/// packed points; entry `S` of the result is `f̂(S)`.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fourier_coefficients(table: &[f64]) -> Vec<f64> {
    let mut v = table.to_vec();
    walsh_hadamard(&mut v);
    let scale = 1.0 / table.len() as f64;
    for x in &mut v {
        *x *= scale;
    }
    v
}

/// A single Fourier coefficient `f̂(S)` computed directly from the
/// definition (used by tests to validate the transform).
pub fn fourier_coefficient_naive(table: &[f64], s: u64) -> f64 {
    let n = table.len();
    assert!(n.is_power_of_two(), "length must be a power of two");
    let mut sum = 0.0;
    for (x, &fx) in table.iter().enumerate() {
        let parity = ((x as u64) & s).count_ones() % 2;
        sum += if parity == 1 { -fx } else { fx };
    }
    sum / n as f64
}

/// Parseval's identity residual: `E[f²] − Σ_S f̂(S)²` (should be ≈ 0).
pub fn parseval_check(table: &[f64]) -> f64 {
    let coeffs = fourier_coefficients(table);
    let lhs: f64 = table.iter().map(|v| v * v).sum::<f64>() / table.len() as f64;
    let rhs: f64 = coeffs.iter().map(|c| c * c).sum();
    lhs - rhs
}

/// The **Lemma 5.2 sum** for a Boolean function `f : {0,1}^{k+1} → {0,1}`
/// given as a truth table of length `2^{k+1}`:
///
/// `Σ_{b ∈ {0,1}^k} ‖f(U_{k+1}) − f(U_{[b]})‖²`,
///
/// where `U_{[b]}` is uniform on `{(x, x·b) : x ∈ {0,1}^k}`. The lemma
/// asserts this is at most `E[f] ≤ 1`; the paper proves it by identifying
/// each summand with the Fourier coefficient `f̂(S_b ∪ {k+1})`.
///
/// # Panics
///
/// Panics if the table length is not a power of two or is less than 2.
pub fn lemma_5_2_sum(table: &[f64]) -> f64 {
    let len = table.len();
    assert!(len.is_power_of_two() && len >= 2, "need a 2^{{k+1}} table");
    let k = len.trailing_zeros() - 1;
    let mean: f64 = table.iter().sum::<f64>() / len as f64;
    let mut total = 0.0;
    for b in 0..(1u64 << k) {
        // E over U_[b]: x ranges over {0,1}^k, last input bit is <x,b>.
        let mut sum = 0.0;
        for x in 0..(1u64 << k) {
            let last = (x & b).count_ones() as u64 % 2;
            let point = x | (last << k);
            sum += table[point as usize];
        }
        let mean_b = sum / (1u64 << k) as f64;
        total += (mean_b - mean) * (mean_b - mean);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_boolean_table(rng: &mut StdRng, n: u32) -> Vec<f64> {
        (0..1usize << n)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { 0.0 })
            .collect()
    }

    #[test]
    fn transform_matches_naive() {
        let mut rng = StdRng::seed_from_u64(1);
        let table = random_boolean_table(&mut rng, 6);
        let coeffs = fourier_coefficients(&table);
        for s in [0u64, 1, 5, 17, 63] {
            let naive = fourier_coefficient_naive(&table, s);
            assert!((coeffs[s as usize] - naive).abs() < 1e-12);
        }
    }

    #[test]
    fn transform_is_involution_up_to_scale() {
        let mut rng = StdRng::seed_from_u64(2);
        let table: Vec<f64> = (0..64).map(|_| rng.gen::<f64>()).collect();
        let mut twice = table.clone();
        walsh_hadamard(&mut twice);
        walsh_hadamard(&mut twice);
        for (a, b) in table.iter().zip(&twice) {
            assert!((a * 64.0 - b).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_holds() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [1u32, 4, 8] {
            let table = random_boolean_table(&mut rng, n);
            assert!(parseval_check(&table).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_set_coefficient_is_mean() {
        let table = [1.0, 0.0, 0.0, 1.0];
        let coeffs = fourier_coefficients(&table);
        assert!((coeffs[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parity_has_single_coefficient() {
        // f(x) = (-1)^{x0 + x1} has f̂({0,1}) = 1 and all others 0.
        let table: Vec<f64> = (0..4u64)
            .map(|x| if x.count_ones() % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let coeffs = fourier_coefficients(&table);
        assert!((coeffs[3] - 1.0).abs() < 1e-12);
        for s in [0usize, 1, 2] {
            assert!(coeffs[s].abs() < 1e-12);
        }
    }

    #[test]
    fn lemma_5_2_bound_random_functions() {
        // Σ_b ||f(U_{k+1}) - f(U_[b])||² <= E[f].
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let table = random_boolean_table(&mut rng, 9); // k = 8
            let mean: f64 = table.iter().sum::<f64>() / table.len() as f64;
            let sum = lemma_5_2_sum(&table);
            assert!(sum <= mean + 1e-9, "Lemma 5.2 violated: {sum} > {mean}");
        }
    }

    #[test]
    fn lemma_5_2_tight_for_inner_product_indicator() {
        // f(x, y) = 1 iff y = <x, b*>: then ||f(U) - f(U_[b*])|| = 1/2 and
        // the b* term alone contributes 1/4 toward E[f] = 1/2.
        let k = 6u32;
        let bstar = 0b101101u64;
        let table: Vec<f64> = (0..1u64 << (k + 1))
            .map(|p| {
                let x = p & ((1 << k) - 1);
                let y = (p >> k) & 1;
                if (x & bstar).count_ones() as u64 % 2 == y {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let sum = lemma_5_2_sum(&table);
        assert!(sum <= 0.5 + 1e-9);
        assert!(sum >= 0.25 - 1e-9, "b* summand alone is (1/2)² = 1/4");
    }

    #[test]
    fn lemma_5_2_matches_fourier_identity() {
        // The proof identifies ||f(U)-f(U_[b])|| with f̂(S_b ∪ {k+1}); check
        // Σ_b f̂(S_b ∪ {k+1})² equals the lemma sum.
        let mut rng = StdRng::seed_from_u64(5);
        let k = 5u32;
        let table = random_boolean_table(&mut rng, k + 1);
        let coeffs = fourier_coefficients(&table);
        let via_fourier: f64 = (0..1u64 << k)
            .map(|b| {
                let s = b | (1 << k);
                coeffs[s as usize] * coeffs[s as usize]
            })
            .sum();
        let direct = lemma_5_2_sum(&table);
        assert!((via_fourier - direct).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut v = vec![0.0; 3];
        walsh_hadamard(&mut v);
    }
}
