//! Concentration bounds used by the paper's Appendix B analysis.
//!
//! Theorem B.1's proof uses two multiplicative Chernoff bounds: on the
//! active-set size (`Pr[N_active > (1+δ)np] ≤ e^{−δnp/3}`) and on the
//! number of active clique members (negatively associated indicators,
//! `Pr[Σ Y_i < (1−δ)pk] ≤ e^{−δ²pk/2}`). This module provides the bounds
//! and the paper's instantiations so the experiment tables can print
//! "failure probability ≤ …" columns that are *derived*, not asserted.

/// Multiplicative Chernoff, upper tail:
/// `Pr[X > (1+δ)μ] ≤ exp(−δμ/3)` for `δ ≥ 1`, and
/// `≤ exp(−δ²μ/3)` for `0 < δ ≤ 1` (X a sum of independent or negatively
/// associated indicators with mean `μ`).
///
/// # Panics
///
/// Panics if `delta ≤ 0` or `mu < 0`.
pub fn chernoff_upper(mu: f64, delta: f64) -> f64 {
    assert!(delta > 0.0, "delta must be positive");
    assert!(mu >= 0.0, "mean must be non-negative");
    if delta >= 1.0 {
        (-delta * mu / 3.0).exp()
    } else {
        (-delta * delta * mu / 3.0).exp()
    }
}

/// Multiplicative Chernoff, lower tail:
/// `Pr[X < (1−δ)μ] ≤ exp(−δ²μ/2)` for `0 < δ < 1`.
///
/// # Panics
///
/// Panics if `delta ∉ (0, 1)` or `mu < 0`.
pub fn chernoff_lower(mu: f64, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    assert!(mu >= 0.0, "mean must be non-negative");
    (-delta * delta * mu / 2.0).exp()
}

/// The failure probabilities of Theorem B.1's two bad events at
/// parameters `(n, k, p)`:
///
/// * `too_many_active` — `N_active > 2np` (the paper's δ = 1 upper tail);
/// * `too_few_clique_active` — fewer than `pk/2` clique members active
///   (δ = ½ lower tail, negative association).
#[derive(Debug, Clone, Copy)]
pub struct AppendixBFailure {
    /// `Pr[N_active > 2np] ≤ e^{−np/3}`.
    pub too_many_active: f64,
    /// `Pr[active clique members < pk/2] ≤ e^{−pk/8}`.
    pub too_few_clique_active: f64,
}

impl AppendixBFailure {
    /// A union bound over both events.
    pub fn union(&self) -> f64 {
        (self.too_many_active + self.too_few_clique_active).min(1.0)
    }
}

/// Evaluates the Appendix B failure bounds at `(n, k, p)`.
pub fn appendix_b_failure(n: usize, k: usize, p: f64) -> AppendixBFailure {
    AppendixBFailure {
        too_many_active: chernoff_upper(n as f64 * p, 1.0),
        too_few_clique_active: chernoff_lower(k as f64 * p, 0.5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bounds_are_probabilities() {
        for mu in [0.5, 10.0, 500.0] {
            for delta in [0.1, 0.5, 0.99, 2.0] {
                let b = chernoff_upper(mu, delta);
                assert!((0.0..=1.0).contains(&b));
            }
            let b = chernoff_lower(mu, 0.3);
            assert!((0.0..=1.0).contains(&b));
        }
    }

    #[test]
    fn bounds_shrink_with_mean() {
        assert!(chernoff_upper(100.0, 1.0) < chernoff_upper(10.0, 1.0));
        assert!(chernoff_lower(100.0, 0.5) < chernoff_lower(10.0, 0.5));
    }

    #[test]
    fn upper_tail_bound_is_valid_empirically() {
        // Binomial(n, q), tail at 2·mean.
        let mut rng = StdRng::seed_from_u64(1);
        let (n, q) = (400usize, 0.05f64);
        let mu = n as f64 * q;
        let trials = 4000;
        let exceed = (0..trials)
            .filter(|_| {
                let x = (0..n).filter(|_| rng.gen::<f64>() < q).count() as f64;
                x > 2.0 * mu
            })
            .count();
        let empirical = exceed as f64 / trials as f64;
        assert!(
            empirical <= chernoff_upper(mu, 1.0) + 0.01,
            "empirical {empirical} vs bound {}",
            chernoff_upper(mu, 1.0)
        );
    }

    #[test]
    fn lower_tail_bound_is_valid_empirically() {
        let mut rng = StdRng::seed_from_u64(2);
        let (n, q) = (300usize, 0.2f64);
        let mu = n as f64 * q;
        let trials = 4000;
        let below = (0..trials)
            .filter(|_| {
                let x = (0..n).filter(|_| rng.gen::<f64>() < q).count() as f64;
                x < 0.5 * mu
            })
            .count();
        let empirical = below as f64 / trials as f64;
        assert!(empirical <= chernoff_lower(mu, 0.5) + 0.01);
    }

    #[test]
    fn appendix_b_failure_is_whp_in_the_theorem_regime() {
        // k = omega(log² n): both failure probabilities vanish
        // polynomially fast — here far below the paper's 1/n².
        let n = 1024usize;
        let k = 250usize;
        let log_n = (n as f64).log2();
        let p = log_n * log_n / k as f64;
        let fail = appendix_b_failure(n, k, p);
        // The clique-activation bound is e^{-log²n/8}, which dips below
        // the paper's 1/n² only for log n >= 16·ln2 ≈ 11 with room to
        // spare (n >= ~2^23); at n = 2^10 check the polynomial regime
        // 1/n^1.5 and the asymptotic crossover separately.
        assert!(fail.union() < (n as f64).powf(-1.5), "{fail:?}");
        let big = 1u64 << 30;
        let log_big = (big as f64).log2();
        let fail_big = appendix_b_failure(big as usize, (log_big * log_big * 2.0) as usize, 0.5);
        assert!(
            fail_big.union() < 1.0 / (big as f64 * big as f64),
            "{fail_big:?}"
        );
    }

    #[test]
    fn appendix_b_failure_degrades_below_threshold() {
        // k ~ log n (far below log² n): the clique-activation event stops
        // being negligible.
        let n = 1024usize;
        let k = 10usize;
        let p = 1.0f64.min((n as f64).log2().powi(2) / k as f64);
        let fail = appendix_b_failure(n, k, p.min(1.0));
        // pk = ~log²n is still fine, but p capped at 1 means every
        // processor is active: N_active = n > 2np fails differently; the
        // interesting check is just that the bound machinery stays sane.
        assert!(fail.union() <= 1.0);
    }
}
