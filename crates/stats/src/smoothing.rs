//! Good–Turing smoothing for plug-in total-variation estimates.
//!
//! The plug-in TV between two empirical histograms is biased **upward**
//! by exactly the mass sitting in combined singletons: a transcript key
//! drawn once across both sides contributes its full empirical weight to
//! `|p̂ - q̂|` even when the true distributions overlap there. Good–Turing
//! theory identifies the singleton fraction `n₁/N` with the unseen
//! (missing) probability mass, so subtracting the singleton weight from
//! the plug-in distance removes that bias — the *smoothed* estimator.
//! On a fully resolved support (`n₁ = 0`) the two estimators coincide;
//! on a saturated support (every key a singleton) the plug-in estimate
//! pins near 1 regardless of the true distance while the smoothed one
//! collapses toward the honest answer "nothing was resolved".
//!
//! The functions here are pure arithmetic on counts — the per-depth
//! singleton counting lives with the sorted-key walks in `bcc-core`,
//! which tags each profile with the [`TvEstimator`] that produced it.

/// Which estimator produced a TV figure — recorded in provenance so a
/// smoothed profile can never be mistaken for a plug-in one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TvEstimator {
    /// The raw empirical-histogram distance.
    PlugIn,
    /// The Good–Turing corrected distance ([`smoothed_tv`]).
    Smoothed,
}

/// The Good–Turing missing-mass estimate `n₁ / N`: the probability that
/// the next draw lands on a never-seen outcome, estimated from the
/// fraction of singletons. Clamped to `[0, 1]`; zero draws mean total
/// ignorance, reported as the full mass 1.
pub fn missing_mass(singletons: usize, draws: usize) -> f64 {
    if draws == 0 {
        return 1.0;
    }
    (singletons as f64 / draws as f64).min(1.0)
}

/// The exact plug-in inflation contributed by combined singletons: a key
/// seen once in side `a` (and never in `b`) adds `w_a / 2 = 1/(2·len_a)`
/// to the plug-in TV, and symmetrically for `b`. Subtracting this is the
/// smoothing correction.
pub fn singleton_correction(
    singletons_a: usize,
    len_a: usize,
    singletons_b: usize,
    len_b: usize,
) -> f64 {
    let mass = |n1: usize, len: usize| {
        if len == 0 {
            0.0
        } else {
            n1 as f64 / len as f64
        }
    };
    0.5 * (mass(singletons_a, len_a) + mass(singletons_b, len_b))
}

/// The smoothed TV: plug-in minus the singleton correction, floored at 0
/// (TV is nonnegative; over-correction on tiny samples must not go
/// negative).
pub fn smoothed_tv(plugin_tv: f64, correction: f64) -> f64 {
    (plugin_tv - correction).max(0.0)
}

/// The smoothed estimator's noise scale: the multinomial fluctuation of
/// the *resolved* support (keys seen at least twice, `support - n₁`)
/// plus the correction itself as slack for its own estimation error.
/// Clamped to 1 — TV is bounded, and so is any honest floor on it.
///
/// This is never larger than necessary by construction, but callers
/// should still take the min against the plug-in floor: on a support
/// that is saturated *and* skewed the two scales can cross.
pub fn smoothed_floor(resolved_support: usize, samples_per_side: usize, correction: f64) -> f64 {
    if samples_per_side == 0 {
        return f64::INFINITY;
    }
    ((resolved_support as f64 / samples_per_side as f64).sqrt() + correction).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_mass_is_the_singleton_fraction_clamped() {
        assert_eq!(missing_mass(0, 100), 0.0);
        assert_eq!(missing_mass(25, 100), 0.25);
        assert_eq!(missing_mass(200, 100), 1.0, "clamped");
        assert_eq!(missing_mass(0, 0), 1.0, "no draws: total ignorance");
    }

    #[test]
    fn correction_is_half_the_singleton_weight_per_side() {
        // 10 singletons of weight 1/100 on one side, none on the other.
        assert_eq!(singleton_correction(10, 100, 0, 50), 0.05);
        // Both sides contribute independently at their own weights.
        let c = singleton_correction(10, 100, 5, 50);
        assert!((c - 0.1).abs() < 1e-15);
        assert_eq!(singleton_correction(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn smoothed_tv_subtracts_and_floors_at_zero() {
        assert_eq!(smoothed_tv(0.8, 0.3), 0.5);
        assert_eq!(smoothed_tv(0.2, 0.5), 0.0, "over-correction floors");
    }

    #[test]
    fn fully_saturated_supports_smooth_to_zero() {
        // Every key a singleton on both equal-length sides: plug-in TV is
        // 1 whatever the true distance; the correction is exactly 1.
        let n = 1 << 10;
        let correction = singleton_correction(n, n, n, n);
        assert_eq!(correction, 1.0);
        assert_eq!(smoothed_tv(1.0, correction), 0.0);
    }

    #[test]
    fn smoothed_floor_tracks_the_resolved_support() {
        // Fully resolved: the floor is the plain sampling scale.
        assert_eq!(smoothed_floor(64, 1 << 12, 0.0), (64f64 / 4096.0).sqrt());
        // Saturated: nothing resolved, the floor is the correction alone.
        assert_eq!(smoothed_floor(0, 1 << 12, 0.75), 0.75);
        // Clamped to the TV bound.
        assert_eq!(smoothed_floor(1 << 20, 4, 1.0), 1.0);
        assert_eq!(smoothed_floor(1, 0, 0.0), f64::INFINITY);
    }
}
