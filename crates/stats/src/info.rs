//! Information theory: entropy, mutual information, KL divergence,
//! Pinsker's inequality, and the paper's Fact 2.3.
//!
//! These are the tools behind Lemma 1.10 and Lemma 4.4 of the paper: a
//! sub-additivity argument bounds `Σ_i I(X_i; f(X))`, Pinsker converts KL
//! divergence to statistical distance, and Fact 2.3 relates binary entropy
//! to bias.

use std::collections::BTreeMap;

use crate::dist::Dist;

/// Binary entropy `H(p) = −p log₂ p − (1−p) log₂(1−p)`, with `H(0)=H(1)=0`.
///
/// # Panics
///
/// Panics if `p ∉ [0, 1]`.
pub fn binary_entropy(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let term = |x: f64| if x <= 0.0 { 0.0 } else { -x * x.log2() };
    term(p) + term(1.0 - p)
}

/// The inverse of binary entropy on `[0, 1/2]`: the unique `p ≤ 1/2` with
/// `H(p) = h`, by bisection.
///
/// # Panics
///
/// Panics if `h ∉ [0, 1]`.
pub fn binary_entropy_inverse(h: f64) -> f64 {
    assert!((0.0..=1.0).contains(&h), "h must be in [0,1]");
    let (mut lo, mut hi) = (0.0f64, 0.5f64);
    for _ in 0..80 {
        let mid = (lo + hi) / 2.0;
        if binary_entropy(mid) < h {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

/// **Fact 2.3** of the paper: if `H(p) ≥ 0.9` then `p ∈ [0.3, 0.7]` and
/// `(1 − H(p)) / (p − 1/2)² ∈ [2, 3]`.
///
/// Returns the ratio `(1 − H(p)) / (p − 1/2)²` (or `None` at `p = 1/2`,
/// where it degenerates to `0/0`; the limit is `2/ln 2 ≈ 2.885`).
pub fn fact_2_3_ratio(p: f64) -> Option<f64> {
    let gap = p - 0.5;
    if gap.abs() < 1e-12 {
        return None;
    }
    Some((1.0 - binary_entropy(p)) / (gap * gap))
}

/// KL divergence `D(P‖Q) = Σ P(x) log₂ (P(x)/Q(x))` in bits.
///
/// Returns `f64::INFINITY` if `P` puts mass where `Q` does not.
pub fn kl_divergence<T: Ord + Clone>(p: &Dist<T>, q: &Dist<T>) -> f64 {
    let mut sum = 0.0;
    for (v, pp) in p.iter() {
        let qq = q.prob(v);
        if qq <= 0.0 {
            return f64::INFINITY;
        }
        sum += pp * (pp / qq).log2();
    }
    sum.max(0.0)
}

/// **Pinsker's inequality** (the paper's Lemma 2.2, bits version):
/// `‖P − Q‖ ≤ sqrt(½ · D(P‖Q))` with `D` in *nats*; with `D` in bits the
/// bound is `sqrt(ln 2 / 2 · D)`.
///
/// Returns the right-hand side for the given KL divergence in bits.
pub fn pinsker_bound(kl_bits: f64) -> f64 {
    (std::f64::consts::LN_2 / 2.0 * kl_bits).sqrt()
}

/// A finite joint distribution over pairs, with entropy / information
/// helpers used by the Lemma 4.4 reproduction.
#[derive(Debug, Clone)]
pub struct Joint<A: Ord + Clone, B: Ord + Clone> {
    dist: Dist<(A, B)>,
}

impl<A: Ord + Clone, B: Ord + Clone> Joint<A, B> {
    /// Builds a joint distribution from weights on pairs.
    pub fn from_weights<I: IntoIterator<Item = ((A, B), f64)>>(weights: I) -> Self {
        Joint {
            dist: Dist::from_weights(weights),
        }
    }

    /// The marginal entropy `H(A)`.
    pub fn entropy_first(&self) -> f64 {
        self.marginal_first().entropy()
    }

    /// The marginal entropy `H(B)`.
    pub fn entropy_second(&self) -> f64 {
        self.marginal_second().entropy()
    }

    /// The joint entropy `H(A, B)`.
    pub fn entropy_joint(&self) -> f64 {
        self.dist.entropy()
    }

    /// The conditional entropy `H(A | B) = H(A,B) − H(B)`.
    pub fn conditional_entropy_first(&self) -> f64 {
        (self.entropy_joint() - self.entropy_second()).max(0.0)
    }

    /// The mutual information `I(A; B) = H(A) + H(B) − H(A,B)` in bits.
    pub fn mutual_information(&self) -> f64 {
        (self.entropy_first() + self.entropy_second() - self.entropy_joint()).max(0.0)
    }

    /// The marginal distribution of the first component.
    pub fn marginal_first(&self) -> Dist<A> {
        Dist::from_weights(self.dist.iter().map(|((a, _), p)| (a.clone(), p)))
    }

    /// The marginal distribution of the second component.
    pub fn marginal_second(&self) -> Dist<B> {
        Dist::from_weights(self.dist.iter().map(|((_, b), p)| (b.clone(), p)))
    }

    /// The conditional distribution of the second component given the first.
    pub fn conditional_second(&self, a: &A) -> Option<Dist<B>> {
        let entries: Vec<(B, f64)> = self
            .dist
            .iter()
            .filter(|((x, _), _)| x == a)
            .map(|((_, y), p)| (y.clone(), p))
            .collect();
        if entries.is_empty() {
            None
        } else {
            Some(Dist::from_weights(entries))
        }
    }

    /// **Fact 2.1** of the paper: `I(X;Y) = E_{x∼X} D(Y|X=x ‖ Y)`.
    ///
    /// Computes the right-hand side; the tests confirm it equals
    /// [`Joint::mutual_information`].
    pub fn mutual_information_via_kl(&self) -> f64 {
        let mx = self.marginal_first();
        let my = self.marginal_second();
        let mut sum = 0.0;
        for (a, pa) in mx.iter() {
            let cond = self
                .conditional_second(a)
                .expect("support value has positive mass");
            sum += pa * kl_divergence(&cond, &my);
        }
        sum
    }
}

/// Builds the joint distribution of `(X, f(X))` for `X` drawn from `d`.
pub fn pushforward_joint<T, U, F>(d: &Dist<T>, mut f: F) -> Joint<T, U>
where
    T: Ord + Clone,
    U: Ord + Clone,
    F: FnMut(&T) -> U,
{
    let mut weights: BTreeMap<(T, U), f64> = BTreeMap::new();
    for (v, p) in d.iter() {
        *weights.entry((v.clone(), f(v))).or_insert(0.0) += p;
    }
    Joint::from_weights(weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn binary_entropy_endpoints() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn binary_entropy_symmetric() {
        for p in [0.1, 0.25, 0.4] {
            assert!((binary_entropy(p) - binary_entropy(1.0 - p)).abs() < 1e-12);
        }
    }

    #[test]
    fn entropy_inverse_roundtrip() {
        for p in [0.05, 0.2, 0.35, 0.5] {
            let h = binary_entropy(p);
            let inv = binary_entropy_inverse(h);
            // Near p = 1/2 the inverse is only sqrt(ulp)-conditioned
            // (H'(1/2) = 0), so compare through H rather than pointwise.
            assert!((binary_entropy(inv) - h).abs() < 1e-12);
            assert!((inv - p).abs() < 1e-6);
        }
    }

    #[test]
    fn fact_2_3_holds_on_grid() {
        // The paper's Fact 2.3, checked on a fine grid of the H(p) >= 0.9
        // region.
        let mut checked = 0;
        for i in 0..=10_000 {
            let p = i as f64 / 10_000.0;
            if binary_entropy(p) >= 0.9 {
                assert!(
                    (0.3..=0.7).contains(&p),
                    "H({p}) >= 0.9 must imply p in [0.3, 0.7]"
                );
                if let Some(r) = fact_2_3_ratio(p) {
                    assert!((2.0..=3.0).contains(&r), "ratio {r} at p={p}");
                }
                checked += 1;
            }
        }
        assert!(checked > 1000);
    }

    #[test]
    fn kl_nonnegative_and_zero_iff_equal() {
        let p = Dist::from_weights(vec![(0u8, 0.3), (1u8, 0.7)]);
        let q = Dist::from_weights(vec![(0u8, 0.6), (1u8, 0.4)]);
        assert!(kl_divergence(&p, &q) > 0.0);
        assert!(kl_divergence(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn kl_infinite_outside_support() {
        let p = Dist::uniform([0u8, 1]);
        let q = Dist::point(0u8);
        assert_eq!(kl_divergence(&p, &q), f64::INFINITY);
    }

    #[test]
    fn pinsker_inequality_random_pairs() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let p = Dist::from_weights(vec![
                (0u8, rng.gen::<f64>() + 1e-6),
                (1u8, rng.gen::<f64>() + 1e-6),
                (2u8, rng.gen::<f64>() + 1e-6),
            ]);
            let q = Dist::from_weights(vec![
                (0u8, rng.gen::<f64>() + 1e-6),
                (1u8, rng.gen::<f64>() + 1e-6),
                (2u8, rng.gen::<f64>() + 1e-6),
            ]);
            let tv = p.tv_distance(&q);
            let bound = pinsker_bound(kl_divergence(&p, &q));
            assert!(tv <= bound + 1e-9, "Pinsker violated: {tv} > {bound}");
        }
    }

    #[test]
    fn mutual_information_of_independent_is_zero() {
        let joint = Joint::from_weights(vec![
            ((0u8, 0u8), 0.25),
            ((0, 1), 0.25),
            ((1, 0), 0.25),
            ((1, 1), 0.25),
        ]);
        assert!(joint.mutual_information() < 1e-12);
    }

    #[test]
    fn mutual_information_of_copy_is_entropy() {
        let joint = Joint::from_weights(vec![((0u8, 0u8), 0.5), ((1, 1), 0.5)]);
        assert!((joint.mutual_information() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fact_2_1_kl_form_matches() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30 {
            let joint = Joint::from_weights(
                (0..3u8)
                    .flat_map(|a| (0..3u8).map(move |b| (a, b)))
                    .map(|p| (p, rng.gen::<f64>() + 1e-9))
                    .collect::<Vec<_>>(),
            );
            let direct = joint.mutual_information();
            let via_kl = joint.mutual_information_via_kl();
            assert!(
                (direct - via_kl).abs() < 1e-9,
                "Fact 2.1: {direct} vs {via_kl}"
            );
        }
    }

    #[test]
    fn subadditivity_of_entropy() {
        // H(A,B) <= H(A) + H(B) — used repeatedly in §4.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let joint = Joint::from_weights(
                (0..4u8)
                    .flat_map(|a| (0..4u8).map(move |b| (a, b)))
                    .map(|p| (p, rng.gen::<f64>() + 1e-9))
                    .collect::<Vec<_>>(),
            );
            assert!(joint.entropy_joint() <= joint.entropy_first() + joint.entropy_second() + 1e-9);
        }
    }

    #[test]
    fn conditional_entropy_chain_rule() {
        let mut rng = StdRng::seed_from_u64(4);
        let joint = Joint::from_weights(
            (0..3u8)
                .flat_map(|a| (0..3u8).map(move |b| (a, b)))
                .map(|p| (p, rng.gen::<f64>() + 1e-9))
                .collect::<Vec<_>>(),
        );
        let lhs = joint.conditional_entropy_first() + joint.entropy_second();
        assert!((lhs - joint.entropy_joint()).abs() < 1e-9);
    }

    #[test]
    fn pushforward_builds_expected_joint() {
        let d = Dist::uniform(0u8..4);
        let joint = pushforward_joint(&d, |&x| x % 2);
        // I(X; X mod 2) = 1 bit.
        assert!((joint.mutual_information() - 1.0).abs() < 1e-12);
    }
}
