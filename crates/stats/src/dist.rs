//! Finite discrete distributions and statistical (total-variation) distance.
//!
//! The paper's notation (§2.1): for distributions `D₁, D₂` on a countable
//! set, `‖D₁ − D₂‖ = ½ Σ_x |D₁(x) − D₂(x)|`. Lemma 1.9 — the chain rule the
//! whole inductive framework rests on — is implemented as
//! [`Dist::chain_rule_bound`] and verified exhaustively in the tests.

use std::collections::BTreeMap;

use rand::Rng;

/// A finite discrete distribution over values of type `T`.
///
/// Probabilities are `f64`; construction normalizes, so callers may pass
/// unnormalized non-negative weights. Zero-weight entries are dropped.
///
/// # Example
///
/// ```
/// use bcc_stats::Dist;
///
/// let d = Dist::from_weights(vec![("a", 1.0), ("b", 3.0)]);
/// assert!((d.prob(&"b") - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Dist<T: Ord> {
    // BTreeMap, not HashMap: support iteration order is part of the
    // crate's determinism contract (sampling consumes the RNG stream in
    // value order, so equal seeds give equal draws on every host).
    probs: BTreeMap<T, f64>,
}

impl<T: Ord + Clone> Dist<T> {
    /// Builds a distribution from non-negative weights, normalizing them.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or not finite, or if all weights are
    /// zero.
    pub fn from_weights<I: IntoIterator<Item = (T, f64)>>(weights: I) -> Self {
        let mut probs: BTreeMap<T, f64> = BTreeMap::new();
        let mut total = 0.0;
        for (value, w) in weights {
            assert!(w.is_finite() && w >= 0.0, "weights must be finite and >= 0");
            if w > 0.0 {
                *probs.entry(value).or_insert(0.0) += w;
                total += w;
            }
        }
        assert!(total > 0.0, "distribution needs positive total mass");
        for p in probs.values_mut() {
            *p /= total;
        }
        Dist { probs }
    }

    /// The uniform distribution over the given values (duplicates get
    /// proportionally more mass).
    pub fn uniform<I: IntoIterator<Item = T>>(values: I) -> Self {
        Dist::from_weights(values.into_iter().map(|v| (v, 1.0)))
    }

    /// The point mass at `value`.
    pub fn point(value: T) -> Self {
        Dist::from_weights([(value, 1.0)])
    }

    /// The probability of `value` (zero if outside the support).
    pub fn prob(&self, value: &T) -> f64 {
        self.probs.get(value).copied().unwrap_or(0.0)
    }

    /// The number of support points.
    pub fn support_len(&self) -> usize {
        self.probs.len()
    }

    /// Iterates over `(value, probability)` pairs in ascending value order.
    pub fn iter(&self) -> impl Iterator<Item = (&T, f64)> {
        self.probs.iter().map(|(v, &p)| (v, p))
    }

    /// Total-variation (statistical) distance `‖self − other‖ ∈ [0, 1]`.
    pub fn tv_distance(&self, other: &Dist<T>) -> f64 {
        let mut sum = 0.0;
        for (v, p) in &self.probs {
            sum += (p - other.prob(v)).abs();
        }
        for (v, q) in &other.probs {
            if !self.probs.contains_key(v) {
                sum += q;
            }
        }
        sum / 2.0
    }

    /// The mixture `λ·self + (1−λ)·other`.
    ///
    /// # Panics
    ///
    /// Panics if `λ ∉ [0, 1]`.
    pub fn mix(&self, other: &Dist<T>, lambda: f64) -> Dist<T> {
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0,1]");
        let mut weights: BTreeMap<T, f64> = BTreeMap::new();
        for (v, p) in &self.probs {
            *weights.entry(v.clone()).or_insert(0.0) += lambda * p;
        }
        for (v, q) in &other.probs {
            *weights.entry(v.clone()).or_insert(0.0) += (1.0 - lambda) * q;
        }
        Dist::from_weights(weights)
    }

    /// The uniform mixture of a family of distributions.
    ///
    /// This is the paper's decomposition step in reverse:
    /// `A_pseudo = (1/|I|) Σ_I A_I` (§3).
    ///
    /// # Panics
    ///
    /// Panics if the family is empty.
    pub fn uniform_mixture<'a, I>(dists: I) -> Dist<T>
    where
        I: IntoIterator<Item = &'a Dist<T>>,
        T: 'a,
    {
        let mut weights: BTreeMap<T, f64> = BTreeMap::new();
        let mut count = 0usize;
        for d in dists {
            count += 1;
            for (v, p) in &d.probs {
                *weights.entry(v.clone()).or_insert(0.0) += p;
            }
        }
        assert!(count > 0, "uniform_mixture of an empty family");
        Dist::from_weights(weights)
    }

    /// The image distribution `f(D)` (paper notation, §2.1).
    pub fn map<U: Ord + Clone, F: FnMut(&T) -> U>(&self, mut f: F) -> Dist<U> {
        Dist::from_weights(self.probs.iter().map(|(v, &p)| (f(v), p)))
    }

    /// Samples a value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        let mut u: f64 = rng.gen::<f64>();
        let mut last = None;
        for (v, p) in &self.probs {
            if u < *p {
                return v.clone();
            }
            u -= p;
            last = Some(v);
        }
        last.expect("non-empty distribution").clone()
    }

    /// Shannon entropy in bits.
    pub fn entropy(&self) -> f64 {
        self.probs
            .values()
            .filter(|&&p| p > 0.0)
            .map(|&p| -p * p.log2())
            .sum()
    }
}

impl<T: Ord + Clone> Dist<(T, T)> {
    /// The marginal on the first component (`D|_X` in Lemma 1.9).
    pub fn marginal_first(&self) -> Dist<T> {
        Dist::from_weights(self.iter().map(|((a, _), p)| (a.clone(), p)))
    }

    /// The conditional distribution of the second component given the first
    /// equals `a` (`D_{X=a}` in Lemma 1.9).
    ///
    /// Returns `None` if `a` has zero marginal probability (the paper sets
    /// this case to an arbitrary fixed distribution; callers decide).
    pub fn conditional_second(&self, a: &T) -> Option<Dist<T>> {
        let mass: f64 = self
            .iter()
            .filter(|((x, _), _)| x == a)
            .map(|(_, p)| p)
            .sum();
        if mass <= 0.0 {
            return None;
        }
        Some(Dist::from_weights(self.iter().filter_map(|((x, y), p)| {
            if x == a {
                Some((y.clone(), p))
            } else {
                None
            }
        })))
    }

    /// The right-hand side of **Lemma 1.9**:
    /// `‖D|_X − D'|_X‖ + E_{a∼D|_X} ‖D_{X=a} − D'_{X=a}‖`.
    ///
    /// The lemma asserts `‖D − D'‖` is at most this; the tests check it on
    /// random joint distributions.
    pub fn chain_rule_bound(&self, other: &Dist<(T, T)>) -> f64 {
        let mx = self.marginal_first();
        let my = other.marginal_first();
        let marginal_term = mx.tv_distance(&my);
        let mut cond_term = 0.0;
        for (a, pa) in mx.iter() {
            let ca = self
                .conditional_second(a)
                .expect("a has positive marginal mass");
            // Per the paper's footnote: if D'_{X=a} is undefined, use an
            // arbitrary fixed distribution — here, the conditional of self,
            // making the term 0, which only weakens the bound we verify.
            let cb = other.conditional_second(a).unwrap_or_else(|| ca.clone());
            cond_term += pa * ca.tv_distance(&cb);
        }
        marginal_term + cond_term
    }
}

/// Total-variation distance between two Bernoulli distributions, `|p − q|`.
///
/// For Boolean-valued `f`, `‖f(D₁) − f(D₂)‖ = |E_{D₁}[f] − E_{D₂}[f]|`
/// (used constantly in the paper, e.g. in the proof of Lemma 5.2).
///
/// # Panics
///
/// Panics if either argument is outside `[0, 1]`.
pub fn tv_bernoulli(p: f64, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    assert!((0.0..=1.0).contains(&q), "q must be a probability");
    (p - q).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_dist(rng: &mut StdRng, support: &[u32]) -> Dist<u32> {
        Dist::from_weights(support.iter().map(|&v| (v, rng.gen::<f64>() + 1e-9)))
    }

    #[test]
    fn probabilities_normalize() {
        let d = Dist::from_weights(vec![(0u8, 2.0), (1u8, 6.0)]);
        assert!((d.prob(&0) - 0.25).abs() < 1e-12);
        assert!((d.prob(&1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn duplicate_values_accumulate() {
        let d = Dist::from_weights(vec![(7u8, 1.0), (7u8, 1.0), (8u8, 2.0)]);
        assert!((d.prob(&7) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tv_distance_axioms() {
        let mut rng = StdRng::seed_from_u64(1);
        let support = [0u32, 1, 2, 3, 4];
        for _ in 0..30 {
            let a = random_dist(&mut rng, &support);
            let b = random_dist(&mut rng, &support);
            let c = random_dist(&mut rng, &support);
            let dab = a.tv_distance(&b);
            assert!((0.0..=1.0).contains(&dab));
            assert!((dab - b.tv_distance(&a)).abs() < 1e-12, "symmetry");
            assert!(a.tv_distance(&a) < 1e-12, "identity");
            assert!(
                dab <= a.tv_distance(&c) + c.tv_distance(&b) + 1e-12,
                "triangle inequality"
            );
        }
    }

    #[test]
    fn tv_distance_disjoint_supports_is_one() {
        let a = Dist::uniform([0u8, 1]);
        let b = Dist::uniform([2u8, 3]);
        assert!((a.tv_distance(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixture_interpolates_tv() {
        // ||λa + (1-λ)b - b|| = λ||a - b||
        let a = Dist::uniform([0u8]);
        let b = Dist::uniform([1u8]);
        let m = a.mix(&b, 0.3);
        assert!((m.tv_distance(&b) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn uniform_mixture_is_average() {
        let a = Dist::point(0u8);
        let b = Dist::point(1u8);
        let m = Dist::uniform_mixture([&a, &b]);
        assert!((m.prob(&0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mixture_tv_bounded_by_average_tv() {
        // ||avg_I D_I - U|| <= avg_I ||D_I - U||: the framework's
        // L_real-dist <= L_progress inequality (§3).
        let mut rng = StdRng::seed_from_u64(2);
        let support = [0u32, 1, 2, 3];
        for _ in 0..20 {
            let family: Vec<Dist<u32>> = (0..5).map(|_| random_dist(&mut rng, &support)).collect();
            let target = random_dist(&mut rng, &support);
            let mixed = Dist::uniform_mixture(family.iter());
            let avg: f64 =
                family.iter().map(|d| d.tv_distance(&target)).sum::<f64>() / family.len() as f64;
            assert!(mixed.tv_distance(&target) <= avg + 1e-12);
        }
    }

    #[test]
    fn map_is_contraction() {
        // Data-processing: ||f(D1) - f(D2)|| <= ||D1 - D2||.
        let mut rng = StdRng::seed_from_u64(3);
        let support = [0u32, 1, 2, 3, 4, 5];
        for _ in 0..20 {
            let a = random_dist(&mut rng, &support);
            let b = random_dist(&mut rng, &support);
            let fa = a.map(|&x| x % 2);
            let fb = b.map(|&x| x % 2);
            assert!(fa.tv_distance(&fb) <= a.tv_distance(&b) + 1e-12);
        }
    }

    #[test]
    fn lemma_1_9_chain_rule_holds() {
        let mut rng = StdRng::seed_from_u64(4);
        let pairs: Vec<(u32, u32)> = (0..3).flat_map(|x| (0..3).map(move |y| (x, y))).collect();
        for _ in 0..50 {
            let d: Dist<(u32, u32)> =
                Dist::from_weights(pairs.iter().map(|&p| (p, rng.gen::<f64>() + 1e-9)));
            let d2: Dist<(u32, u32)> =
                Dist::from_weights(pairs.iter().map(|&p| (p, rng.gen::<f64>() + 1e-9)));
            let lhs = d.tv_distance(&d2);
            let rhs = d.chain_rule_bound(&d2);
            assert!(lhs <= rhs + 1e-9, "Lemma 1.9 violated: {lhs} > {rhs}");
        }
    }

    #[test]
    fn chain_rule_tight_for_product() {
        // For product distributions with identical second marginal, the
        // bound collapses to the first-marginal distance.
        let d: Dist<(u32, u32)> = Dist::from_weights(vec![
            ((0, 0), 0.35),
            ((0, 1), 0.35),
            ((1, 0), 0.15),
            ((1, 1), 0.15),
        ]);
        let d2: Dist<(u32, u32)> = Dist::from_weights(vec![
            ((0, 0), 0.1),
            ((0, 1), 0.1),
            ((1, 0), 0.4),
            ((1, 1), 0.4),
        ]);
        let lhs = d.tv_distance(&d2);
        let rhs = d.chain_rule_bound(&d2);
        assert!((lhs - rhs).abs() < 1e-12);
        assert!((lhs - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_probabilities() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = Dist::from_weights(vec![(0u8, 1.0), (1u8, 2.0), (2u8, 1.0)]);
        let mut counts = [0usize; 3];
        let n = 20_000;
        for _ in 0..n {
            counts[d.sample(&mut rng) as usize] += 1;
        }
        assert!((counts[1] as f64 / n as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn entropy_of_uniform() {
        let d = Dist::uniform(0u8..8);
        assert!((d.entropy() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn marginal_and_conditional() {
        let d: Dist<(u8, u8)> =
            Dist::from_weights(vec![((0, 0), 0.25), ((0, 1), 0.25), ((1, 0), 0.5)]);
        let m = d.marginal_first();
        assert!((m.prob(&0) - 0.5).abs() < 1e-12);
        let c0 = d.conditional_second(&0).unwrap();
        assert!((c0.prob(&0) - 0.5).abs() < 1e-12);
        let c1 = d.conditional_second(&1).unwrap();
        assert!((c1.prob(&0) - 1.0).abs() < 1e-12);
        assert!(d.conditional_second(&2).is_none());
    }

    #[test]
    fn bernoulli_tv() {
        assert!((tv_bernoulli(0.2, 0.7) - 0.5).abs() < 1e-12);
        assert_eq!(tv_bernoulli(0.5, 0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive total mass")]
    fn empty_distribution_panics() {
        let _ = Dist::<u8>::from_weights(Vec::new());
    }
}
