//! Probability and information-theory toolkit for the Broadcast Congested
//! Clique reproduction.
//!
//! Everything the paper's analysis manipulates lives here:
//!
//! * [`dist`] — finite discrete distributions and **total-variation
//!   (statistical) distance** `‖D₁ − D₂‖ = ½ Σ |D₁(x) − D₂(x)|` (§2.1),
//!   including the chain-rule bound of Lemma 1.9;
//! * [`info`] — entropy, conditional entropy, mutual information, KL
//!   divergence, Pinsker's inequality (Lemma 2.2), binary entropy and
//!   Fact 2.3;
//! * [`fourier`] — the Walsh–Hadamard transform on the Boolean cube and
//!   Parseval's identity (§2.2), which power the PRG analysis (Lemma 5.2);
//! * [`boolfn`] — truth-table Boolean functions `f : {0,1}^w → {0,1}` with
//!   the function families the lemma experiments evaluate (majority,
//!   threshold, parity, dictator, random);
//! * [`sampling`] — empirical estimation with Hoeffding confidence bounds
//!   for the Monte-Carlo side of the experiments;
//! * [`smoothing`] — Good–Turing missing-mass correction for plug-in TV
//!   estimates: singleton counts identify the unresolved mass, and the
//!   smoothed estimator subtracts exactly the inflation it causes.

#![forbid(unsafe_code)]

pub mod boolfn;
pub mod chernoff;
pub mod dist;
pub mod fourier;
pub mod info;
pub mod sampling;
pub mod smoothing;

pub use boolfn::TruthTable;
pub use dist::{tv_bernoulli, Dist};
pub use smoothing::TvEstimator;
