//! Boolean functions as truth tables, with the function families used by
//! the paper's statistical-lemma experiments.
//!
//! The lemmas (1.8, 1.10, 4.3, 4.4) quantify over *all* functions
//! `f : {0,1}^n → {0,1}`; the experiments evaluate them on representative
//! families — majority (which witnesses the `Θ(1/√n)` tightness of
//! Lemma 1.10), thresholds, dictators, parities, ANDs and random functions.

use bcc_f2::subcube::Subcube64;
use rand::Rng;

/// A Boolean function `f : {0,1}^n → {0,1}` stored as a packed truth table,
/// for `n ≤ 25` or so (the exact-experiment regime).
///
/// # Example
///
/// ```
/// use bcc_stats::TruthTable;
///
/// let maj = TruthTable::majority(5);
/// assert!(maj.eval(0b11100));
/// assert!(!maj.eval(0b00100));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct TruthTable {
    n: u32,
    bits: Vec<u64>,
}

impl TruthTable {
    /// Builds a table by evaluating `f` on every point of `{0,1}^n`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 30` (the table would not fit in memory).
    pub fn from_fn<F: FnMut(u64) -> bool>(n: u32, mut f: F) -> Self {
        assert!(n <= 30, "truth table too large for n = {n}");
        let size = 1usize << n;
        let mut bits = vec![0u64; size.div_ceil(64)];
        for x in 0..size as u64 {
            if f(x) {
                bits[(x / 64) as usize] |= 1 << (x % 64);
            }
        }
        TruthTable { n, bits }
    }

    /// A uniformly random function.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, n: u32) -> Self {
        let mut t = TruthTable::from_fn(n, |_| false);
        for w in &mut t.bits {
            *w = rng.gen();
        }
        // Mask the tail for n < 6.
        let size = 1usize << n;
        if size < 64 {
            t.bits[0] &= (1u64 << size) - 1;
        }
        t
    }

    /// Majority: 1 iff more than half the input bits are set (ties → 0).
    pub fn majority(n: u32) -> Self {
        TruthTable::from_fn(n, |x| 2 * x.count_ones() > n)
    }

    /// Threshold: 1 iff at least `t` input bits are set.
    pub fn threshold(n: u32, t: u32) -> Self {
        TruthTable::from_fn(n, move |x| x.count_ones() >= t)
    }

    /// Dictator: 1 iff bit `i` is set.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ n`.
    pub fn dictator(n: u32, i: u32) -> Self {
        assert!(i < n, "dictator index out of range");
        TruthTable::from_fn(n, move |x| (x >> i) & 1 == 1)
    }

    /// Parity of the bits selected by `mask`.
    pub fn parity(n: u32, mask: u64) -> Self {
        TruthTable::from_fn(n, move |x| (x & mask).count_ones() % 2 == 1)
    }

    /// AND of the bits selected by `mask`.
    pub fn and(n: u32, mask: u64) -> Self {
        TruthTable::from_fn(n, move |x| x & mask == mask)
    }

    /// The arity `n`.
    pub fn arity(&self) -> u32 {
        self.n
    }

    /// Evaluates the function at a packed point.
    ///
    /// # Panics
    ///
    /// Panics if `x ≥ 2^n`.
    pub fn eval(&self, x: u64) -> bool {
        assert!(x < (1u64 << self.n), "point out of domain");
        (self.bits[(x / 64) as usize] >> (x % 64)) & 1 == 1
    }

    /// `E_{x ∼ U(cube)}[f(x)]`: the mean over a uniform subcube.
    ///
    /// For Boolean `f`, `‖f(U_D) − f(U_{D'})‖` is exactly
    /// `|mean_on(D) − mean_on(D')|` (total variation of Bernoullis).
    ///
    /// # Panics
    ///
    /// Panics if the cube dimension differs from the arity.
    pub fn mean_on_subcube(&self, cube: &Subcube64) -> f64 {
        assert_eq!(cube.dimension(), self.n, "dimension mismatch");
        let mut ones = 0u64;
        for x in cube.iter() {
            if self.eval(x) {
                ones += 1;
            }
        }
        ones as f64 / cube.len() as f64
    }

    /// The mean over an explicit domain given as a sorted slice of points.
    ///
    /// Returns `None` for an empty domain (the paper defines the distance as
    /// 1 in that case; callers decide).
    pub fn mean_on_domain(&self, domain: &[u64]) -> Option<f64> {
        if domain.is_empty() {
            return None;
        }
        let ones = domain.iter().filter(|&&x| self.eval(x)).count();
        Some(ones as f64 / domain.len() as f64)
    }

    /// The global mean `E_{U_n}[f]`.
    pub fn mean(&self) -> f64 {
        let ones: u64 = self.bits.iter().map(|w| w.count_ones() as u64).sum();
        ones as f64 / (1u64 << self.n) as f64
    }

    /// The truth table as a `0.0/1.0` vector (for [`crate::fourier`]).
    pub fn to_f64_table(&self) -> Vec<f64> {
        (0..1u64 << self.n)
            .map(|x| if self.eval(x) { 1.0 } else { 0.0 })
            .collect()
    }

    /// Restricts to the points inside `cube` that also lie in `domain`
    /// (a sorted list), returning the subdomain.
    pub fn restrict_domain(domain: &[u64], cube: &Subcube64) -> Vec<u64> {
        domain
            .iter()
            .copied()
            .filter(|&x| cube.contains(x))
            .collect()
    }
}

impl std::fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TruthTable(n={}, mean={:.3})", self.n, self.mean())
    }
}

/// The named function families swept by the lemma experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Majority of all bits.
    Majority,
    /// Threshold at `⌈n/2⌉ + 1`.
    ShiftedThreshold,
    /// The first coordinate.
    Dictator,
    /// Parity of all bits.
    Parity,
    /// AND of the first three bits.
    And3,
    /// A seeded uniformly random function.
    Random(u64),
}

impl Family {
    /// All families, with a fixed seed for the random one.
    pub fn all(seed: u64) -> Vec<Family> {
        vec![
            Family::Majority,
            Family::ShiftedThreshold,
            Family::Dictator,
            Family::Parity,
            Family::And3,
            Family::Random(seed),
        ]
    }

    /// Instantiates the family at arity `n`.
    pub fn build(self, n: u32) -> TruthTable {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        match self {
            Family::Majority => TruthTable::majority(n),
            Family::ShiftedThreshold => TruthTable::threshold(n, n / 2 + 1),
            Family::Dictator => TruthTable::dictator(n, 0),
            Family::Parity => TruthTable::parity(n, (1u64 << n) - 1),
            Family::And3 => TruthTable::and(n, 0b111),
            Family::Random(seed) => TruthTable::random(&mut StdRng::seed_from_u64(seed), n),
        }
    }

    /// A short label for experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Family::Majority => "majority",
            Family::ShiftedThreshold => "threshold",
            Family::Dictator => "dictator",
            Family::Parity => "parity",
            Family::And3 => "and3",
            Family::Random(_) => "random",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn majority_basic() {
        let m = TruthTable::majority(3);
        assert!(!m.eval(0b000));
        assert!(!m.eval(0b001));
        assert!(m.eval(0b011));
        assert!(m.eval(0b111));
    }

    #[test]
    fn majority_even_ties_are_zero() {
        let m = TruthTable::majority(4);
        assert!(!m.eval(0b0011));
        assert!(m.eval(0b0111));
    }

    #[test]
    fn dictator_depends_on_one_bit() {
        let d = TruthTable::dictator(5, 2);
        for x in 0..32u64 {
            assert_eq!(d.eval(x), (x >> 2) & 1 == 1);
        }
    }

    #[test]
    fn parity_mean_is_half() {
        let p = TruthTable::parity(6, 0b111111);
        assert!((p.mean() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn and_mask() {
        let a = TruthTable::and(4, 0b0101);
        assert!(a.eval(0b0101));
        assert!(a.eval(0b1111));
        assert!(!a.eval(0b0100));
    }

    #[test]
    fn mean_on_full_cube_matches_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = TruthTable::random(&mut rng, 8);
        let cube = Subcube64::new(8);
        assert!((f.mean_on_subcube(&cube) - f.mean()).abs() < 1e-12);
    }

    #[test]
    fn mean_on_subcube_matches_manual() {
        let f = TruthTable::majority(3);
        // Fix x2 = 1: points {100,101,110,111}, majority true on 3 of 4.
        let cube = Subcube64::new(3).fixed(2, true).unwrap();
        assert!((f.mean_on_subcube(&cube) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn random_mean_near_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let f = TruthTable::random(&mut rng, 12);
        assert!((f.mean() - 0.5).abs() < 0.05);
    }

    #[test]
    fn random_small_n_is_tail_masked() {
        let mut rng = StdRng::seed_from_u64(3);
        let f = TruthTable::random(&mut rng, 3);
        // mean must be computable without phantom bits
        assert!(f.mean() <= 1.0);
        let ones = (0..8u64).filter(|&x| f.eval(x)).count();
        assert!((f.mean() - ones as f64 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn mean_on_domain_counts() {
        let f = TruthTable::dictator(3, 0);
        let dom = [0u64, 1, 3, 6];
        assert!((f.mean_on_domain(&dom).unwrap() - 0.5).abs() < 1e-12);
        assert!(f.mean_on_domain(&[]).is_none());
    }

    #[test]
    fn families_build_at_multiple_arities() {
        for fam in Family::all(7) {
            for n in [4u32, 7, 10] {
                let f = fam.build(n);
                assert_eq!(f.arity(), n);
            }
        }
    }

    #[test]
    fn to_f64_table_roundtrip() {
        let f = TruthTable::majority(5);
        let t = f.to_f64_table();
        for (x, v) in t.iter().enumerate() {
            assert_eq!(*v == 1.0, f.eval(x as u64));
        }
    }
}
