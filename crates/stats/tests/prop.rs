//! Property-based tests for the statistics toolkit.

use bcc_stats::dist::{tv_bernoulli, Dist};
use bcc_stats::fourier::{fourier_coefficients, lemma_5_2_sum, parseval_check};
use bcc_stats::info::{binary_entropy, kl_divergence, pinsker_bound};
use bcc_stats::TruthTable;
use proptest::prelude::*;

fn arb_dist(support: usize) -> impl Strategy<Value = Dist<u32>> {
    proptest::collection::vec(1e-6f64..1.0, support)
        .prop_map(|ws| Dist::from_weights(ws.into_iter().enumerate().map(|(i, w)| (i as u32, w))))
}

fn arb_table(n: u32) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(prop_oneof![Just(0.0), Just(1.0)], 1usize << n)
}

proptest! {
    #[test]
    fn tv_is_a_metric(a in arb_dist(5), b in arb_dist(5), c in arb_dist(5)) {
        let dab = a.tv_distance(&b);
        prop_assert!((0.0..=1.0).contains(&dab));
        prop_assert!((dab - b.tv_distance(&a)).abs() < 1e-12);
        prop_assert!(dab <= a.tv_distance(&c) + c.tv_distance(&b) + 1e-12);
    }

    #[test]
    fn data_processing_inequality(a in arb_dist(8), b in arb_dist(8), modulus in 1u32..5) {
        let fa = a.map(|&x| x % modulus);
        let fb = b.map(|&x| x % modulus);
        prop_assert!(fa.tv_distance(&fb) <= a.tv_distance(&b) + 1e-12);
    }

    #[test]
    fn mixing_contracts_tv(a in arb_dist(6), b in arb_dist(6), lambda in 0.0f64..1.0) {
        let m = a.mix(&b, lambda);
        let expected = lambda * a.tv_distance(&b);
        prop_assert!((m.tv_distance(&b) - expected).abs() < 1e-9);
    }

    #[test]
    fn pinsker_holds(a in arb_dist(4), b in arb_dist(4)) {
        let kl = kl_divergence(&a, &b);
        prop_assert!(a.tv_distance(&b) <= pinsker_bound(kl) + 1e-9);
    }

    #[test]
    fn entropy_bounds(a in arb_dist(8)) {
        let h = a.entropy();
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= 3.0 + 1e-12); // log2(8)
    }

    #[test]
    fn binary_entropy_concavity(p in 0.0f64..1.0, q in 0.0f64..1.0) {
        let mid = (p + q) / 2.0;
        prop_assert!(
            binary_entropy(mid) + 1e-12
                >= (binary_entropy(p) + binary_entropy(q)) / 2.0
        );
    }

    #[test]
    fn parseval_identity(table in arb_table(6)) {
        prop_assert!(parseval_check(&table).abs() < 1e-9);
    }

    #[test]
    fn fourier_empty_coefficient_is_mean(table in arb_table(5)) {
        let mean: f64 = table.iter().sum::<f64>() / table.len() as f64;
        let coeffs = fourier_coefficients(&table);
        prop_assert!((coeffs[0] - mean).abs() < 1e-12);
    }

    #[test]
    fn lemma_5_2_for_arbitrary_functions(table in arb_table(7)) {
        // Σ_b ||f(U)-f(U_[b])||² <= E[f] for EVERY Boolean f — the lemma's
        // full quantifier, property-tested.
        let mean: f64 = table.iter().sum::<f64>() / table.len() as f64;
        prop_assert!(lemma_5_2_sum(&table) <= mean + 1e-9);
    }

    #[test]
    fn truth_table_mean_matches_subcube_average(seed in 0u64..1000) {
        use bcc_f2::subcube::Subcube64;
        use rand::{rngs::StdRng, SeedableRng};
        let f = TruthTable::random(&mut StdRng::seed_from_u64(seed), 6);
        // E[f] = (E[f | x0=0] + E[f | x0=1]) / 2
        let c0 = Subcube64::new(6).fixed(0, false).unwrap();
        let c1 = Subcube64::new(6).fixed(0, true).unwrap();
        let avg = (f.mean_on_subcube(&c0) + f.mean_on_subcube(&c1)) / 2.0;
        prop_assert!((f.mean() - avg).abs() < 1e-12);
    }

    #[test]
    fn bernoulli_tv_via_dist(p in 0.0f64..1.0, q in 0.0f64..1.0) {
        // tv_bernoulli agrees with the generic Dist computation whenever
        // both distributions have full support.
        prop_assume!(p > 1e-9 && p < 1.0 - 1e-9 && q > 1e-9 && q < 1.0 - 1e-9);
        let a = Dist::from_weights([(1u8, p), (0u8, 1.0 - p)]);
        let b = Dist::from_weights([(1u8, q), (0u8, 1.0 - q)]);
        prop_assert!((a.tv_distance(&b) - tv_bernoulli(p, q)).abs() < 1e-12);
    }
}
