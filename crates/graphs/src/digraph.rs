//! Directed and undirected graphs over bit-packed adjacency matrices.

use bcc_f2::{BitMatrix, BitVec};
use rand::Rng;

/// A simple directed graph on `n` vertices with no self-loops, stored as a
/// bit-packed adjacency matrix (row `i`, bit `j` ⇔ edge `i → j`).
///
/// Row `i` is exactly the input of processor `i` in the paper's
/// distributed planted-clique problem.
///
/// # Example
///
/// ```
/// use bcc_graphs::DiGraph;
///
/// let mut g = DiGraph::empty(3);
/// g.set_edge(0, 1, true);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(1, 0));
/// assert_eq!(g.out_degree(0), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph {
    adj: BitMatrix,
}

impl DiGraph {
    /// The empty graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        DiGraph {
            adj: BitMatrix::zeros(n, n),
        }
    }

    /// Builds a graph from an adjacency matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or has a non-zero diagonal
    /// (self-loops are forbidden; the paper fixes `A_{i,i} = 0`).
    pub fn from_adjacency(adj: BitMatrix) -> Self {
        assert_eq!(adj.nrows(), adj.ncols(), "adjacency must be square");
        for i in 0..adj.nrows() {
            assert!(!adj.get(i, i), "self-loops are forbidden");
        }
        DiGraph { adj }
    }

    /// A uniformly random directed graph: each ordered pair an independent
    /// fair coin (`A_rand`).
    pub fn random<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Self {
        let mut adj = BitMatrix::random(rng, n, n);
        for i in 0..n {
            adj.set(i, i, false);
        }
        let g = DiGraph { adj };
        if let Some(obs) = bcc_obs::current() {
            let edges: usize = (0..n).map(|u| g.out_degree(u)).sum();
            obs.add("graphs.edges_emitted", bcc_obs::Class::Work, edges as u64);
        }
        g
    }

    /// The number of vertices.
    pub fn n(&self) -> usize {
        self.adj.nrows()
    }

    /// Whether the edge `u → v` exists.
    ///
    /// # Panics
    ///
    /// Panics if a vertex is out of range.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj.get(u, v)
    }

    /// Adds or removes the edge `u → v`.
    ///
    /// # Panics
    ///
    /// Panics if out of range or `u == v` and `present` (self-loop).
    pub fn set_edge(&mut self, u: usize, v: usize, present: bool) {
        assert!(!(u == v && present), "self-loops are forbidden");
        self.adj.set(u, v, present);
    }

    /// Row `u` of the adjacency matrix — processor `u`'s input.
    pub fn row(&self, u: usize) -> &BitVec {
        self.adj.row(u)
    }

    /// The whole adjacency matrix.
    pub fn adjacency(&self) -> &BitMatrix {
        &self.adj
    }

    /// The out-degree of `u`.
    pub fn out_degree(&self, u: usize) -> usize {
        self.adj.row(u).count_ones()
    }

    /// The in-degree of `u`.
    pub fn in_degree(&self, u: usize) -> usize {
        (0..self.n()).filter(|&v| self.adj.get(v, u)).count()
    }

    /// Forces every ordered pair within `set` to be an edge (plants a
    /// directed clique).
    ///
    /// # Panics
    ///
    /// Panics if a vertex repeats or is out of range.
    pub fn plant_clique(&mut self, set: &[usize]) {
        for (a, &u) in set.iter().enumerate() {
            for &v in &set[a + 1..] {
                assert_ne!(u, v, "clique vertices must be distinct");
                self.set_edge(u, v, true);
                self.set_edge(v, u, true);
            }
        }
    }

    /// The *mutual graph*: the undirected graph with `{u,v}` iff both
    /// `u → v` and `v → u`. A set is a directed clique iff it is a clique
    /// of the mutual graph.
    pub fn mutual_graph(&self) -> UGraph {
        let n = self.n();
        let mut g = UGraph::empty(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if self.has_edge(u, v) && self.has_edge(v, u) {
                    g.set_edge(u, v, true);
                }
            }
        }
        g
    }

    /// The induced subgraph on `vertices` (in the given order), together
    /// with the mapping back to original vertex ids.
    pub fn induced_subgraph(&self, vertices: &[usize]) -> (DiGraph, Vec<usize>) {
        let m = vertices.len();
        let mut g = DiGraph::empty(m);
        for (a, &u) in vertices.iter().enumerate() {
            for (b, &v) in vertices.iter().enumerate() {
                if a != b && self.has_edge(u, v) {
                    g.set_edge(a, b, true);
                }
            }
        }
        (g, vertices.to_vec())
    }
}

/// A simple undirected graph with bit-packed symmetric adjacency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UGraph {
    adj: Vec<BitVec>,
}

impl UGraph {
    /// The empty graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        UGraph {
            adj: vec![BitVec::zeros(n); n],
        }
    }

    /// A `G(n, p)` Erdős–Rényi graph.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, n: usize, p: f64) -> Self {
        let mut g = UGraph::empty(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen::<f64>() < p {
                    g.set_edge(u, v, true);
                }
            }
        }
        if let Some(obs) = bcc_obs::current() {
            obs.add(
                "graphs.edges_emitted",
                bcc_obs::Class::Work,
                g.edge_count() as u64,
            );
        }
        g
    }

    /// The number of vertices.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Whether `{u, v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].get(v)
    }

    /// Adds or removes the edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics on self-loops when `present`.
    pub fn set_edge(&mut self, u: usize, v: usize, present: bool) {
        assert!(!(u == v && present), "self-loops are forbidden");
        self.adj[u].set(v, present);
        self.adj[v].set(u, present);
    }

    /// The neighbourhood of `u` as a bit vector.
    pub fn neighbors(&self, u: usize) -> &BitVec {
        &self.adj[u]
    }

    /// The degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].count_ones()
    }

    /// The number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(BitVec::count_ones).sum::<usize>() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_has_no_edges() {
        let g = DiGraph::empty(5);
        for u in 0..5 {
            for v in 0..5 {
                assert!(!g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn set_and_get_directed() {
        let mut g = DiGraph::empty(4);
        g.set_edge(2, 3, true);
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(3, 2));
        g.set_edge(2, 3, false);
        assert!(!g.has_edge(2, 3));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        DiGraph::empty(3).set_edge(1, 1, true);
    }

    #[test]
    fn random_has_empty_diagonal() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = DiGraph::random(&mut rng, 20);
        for i in 0..20 {
            assert!(!g.has_edge(i, i));
        }
    }

    #[test]
    fn random_edge_density_near_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 60;
        let g = DiGraph::random(&mut rng, n);
        let edges: usize = (0..n).map(|u| g.out_degree(u)).sum();
        let possible = n * (n - 1);
        let density = edges as f64 / possible as f64;
        assert!((density - 0.5).abs() < 0.05, "density {density}");
    }

    #[test]
    fn degrees_consistent() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = DiGraph::random(&mut rng, 15);
        let total_out: usize = (0..15).map(|u| g.out_degree(u)).sum();
        let total_in: usize = (0..15).map(|u| g.in_degree(u)).sum();
        assert_eq!(total_out, total_in);
    }

    #[test]
    fn plant_clique_sets_both_directions() {
        let mut g = DiGraph::empty(6);
        g.plant_clique(&[1, 3, 5]);
        for &u in &[1, 3, 5] {
            for &v in &[1, 3, 5] {
                if u != v {
                    assert!(g.has_edge(u, v));
                }
            }
        }
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn mutual_graph_requires_both_edges() {
        let mut g = DiGraph::empty(3);
        g.set_edge(0, 1, true);
        g.set_edge(1, 0, true);
        g.set_edge(1, 2, true);
        let m = g.mutual_graph();
        assert!(m.has_edge(0, 1));
        assert!(!m.has_edge(1, 2));
    }

    #[test]
    fn mutual_graph_density_near_quarter() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 80;
        let g = DiGraph::random(&mut rng, n).mutual_graph();
        let density = g.edge_count() as f64 / (n * (n - 1) / 2) as f64;
        assert!((density - 0.25).abs() < 0.05, "density {density}");
    }

    #[test]
    fn induced_subgraph_preserves_edges() {
        let mut g = DiGraph::empty(5);
        g.set_edge(1, 3, true);
        g.set_edge(3, 4, true);
        let (sub, ids) = g.induced_subgraph(&[1, 3, 4]);
        assert_eq!(ids, vec![1, 3, 4]);
        assert!(sub.has_edge(0, 1)); // 1 -> 3
        assert!(sub.has_edge(1, 2)); // 3 -> 4
        assert!(!sub.has_edge(0, 2)); // 1 -> 4 absent
    }

    #[test]
    fn ugraph_symmetry_and_counts() {
        let mut g = UGraph::empty(4);
        g.set_edge(0, 2, true);
        g.set_edge(2, 3, true);
        assert!(g.has_edge(2, 0));
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn generators_count_emitted_edges_when_observed() {
        let registry = bcc_obs::Registry::new();
        let (di_edges, u_edges) = {
            let _scope = registry.install();
            let mut rng = StdRng::seed_from_u64(9);
            let g = DiGraph::random(&mut rng, 24);
            let u = UGraph::random(&mut rng, 24, 0.4);
            (
                (0..24).map(|v| g.out_degree(v)).sum::<usize>(),
                u.edge_count(),
            )
        };
        let counted = registry
            .snapshot()
            .work
            .iter()
            .find(|(name, _)| name == "graphs.edges_emitted")
            .map(|(_, v)| *v);
        assert_eq!(counted, Some((di_edges + u_edges) as u64));
        // Unobserved generation counts nothing (and costs nothing).
        let mut rng = StdRng::seed_from_u64(9);
        let _ = DiGraph::random(&mut rng, 24);
        assert_eq!(
            registry
                .snapshot()
                .work
                .iter()
                .find(|(name, _)| name == "graphs.edges_emitted")
                .map(|(_, v)| *v),
            counted
        );
    }

    #[test]
    fn gnp_density() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = UGraph::random(&mut rng, 70, 0.3);
        let density = g.edge_count() as f64 / (70.0 * 69.0 / 2.0);
        assert!((density - 0.3).abs() < 0.06);
    }
}
