//! Directed random graphs and the planted-clique input distributions.
//!
//! The paper's planted clique problem (§1.2, §4) is about *directed* graphs
//! on `n` vertices, given to the Broadcast Congested Clique row-by-row:
//! processor `i` holds row `i` of the adjacency matrix. The three input
//! distributions (§1.3 notation) are
//!
//! * `A_rand` — every off-diagonal entry an independent fair coin;
//! * `A_C` — `A_rand` conditioned on the vertex set `C` being a clique
//!   (all edges among `C` present, in both directions);
//! * `A_k` — `A_C` for a uniformly random size-`k` subset `C`.
//!
//! This crate provides the graph type ([`DiGraph`]), exact samplers for the
//! three distributions ([`planted`]), undirected projections (the *mutual*
//! graph, whose cliques are exactly the directed cliques), clique
//! verification and maximum-clique search ([`clique`] — Appendix B lets
//! processors run unbounded local computation, which is Bron–Kerbosch
//! here), and degree statistics ([`degree`]) for the `k ≳ √n` regime.

#![forbid(unsafe_code)]

pub mod clique;
pub mod degree;
pub mod digraph;
pub mod planted;

pub use digraph::{DiGraph, UGraph};
