//! Samplers for the paper's three planted-clique input distributions.
//!
//! §1.3 notation: `A_rand` is the uniform directed graph (diagonal zero),
//! `A_C` conditions on vertex set `C` being a clique, `A_k` plants a clique
//! on a uniformly random size-`k` subset. A key structural fact the whole
//! lower-bound framework rests on (§3, footnote 13): **after fixing `C`,
//! the rows of `A_C` are independent**, each uniform over a subcube. The
//! [`row_subcube`] helper exposes exactly that subcube, which is how
//! `bcc-planted` plugs these distributions into the exact engine.

use bcc_f2::subcube::Subcube64;
use rand::seq::index::sample as index_sample;
use rand::Rng;

use crate::digraph::DiGraph;

/// A sample from `A_k` together with the planted clique.
#[derive(Debug, Clone)]
pub struct PlantedInstance {
    /// The graph (random with a planted directed clique).
    pub graph: DiGraph,
    /// The clique vertices, sorted.
    pub clique: Vec<usize>,
}

/// Samples `A_rand`: a uniformly random directed graph on `n` vertices.
pub fn sample_rand<R: Rng + ?Sized>(rng: &mut R, n: usize) -> DiGraph {
    DiGraph::random(rng, n)
}

/// Samples `A_C`: uniform conditioned on `clique` being a directed clique.
///
/// # Panics
///
/// Panics if `clique` contains repeats or out-of-range vertices.
pub fn sample_with_clique<R: Rng + ?Sized>(rng: &mut R, n: usize, clique: &[usize]) -> DiGraph {
    let mut g = DiGraph::random(rng, n);
    g.plant_clique(clique);
    if let Some(obs) = bcc_obs::current() {
        obs.add("graphs.planted.ac_samples", bcc_obs::Class::Work, 1);
        obs.add(
            "graphs.planted.clique_vertices",
            bcc_obs::Class::Work,
            clique.len() as u64,
        );
    }
    g
}

/// Samples `A_k`: a uniformly random size-`k` clique set, then `A_C`.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_planted<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> PlantedInstance {
    assert!(k <= n, "clique size exceeds vertex count");
    let mut clique: Vec<usize> = index_sample(rng, n, k).into_iter().collect();
    clique.sort_unstable();
    let graph = sample_with_clique(rng, n, &clique);
    if let Some(obs) = bcc_obs::current() {
        obs.add("graphs.planted.ak_samples", bcc_obs::Class::Work, 1);
    }
    PlantedInstance { graph, clique }
}

/// A uniformly random size-`k` subset of `0..n`, sorted (the paper's
/// `S_k^{[n]}`).
pub fn sample_subset<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "subset size exceeds ground set");
    let mut s: Vec<usize> = index_sample(rng, n, k).into_iter().collect();
    s.sort_unstable();
    s
}

/// Enumerates all size-`k` subsets of `0..n` in lexicographic order — the
/// exact decomposition `A_k = avg_C A_C` for small instances.
pub fn all_subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
    assert!(k <= n, "subset size exceeds ground set");
    if k == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    let mut current: Vec<usize> = (0..k).collect();
    loop {
        out.push(current.clone());
        // Rightmost position that can still advance.
        let Some(i) = (0..k).rev().find(|&i| current[i] < n - k + i) else {
            return out;
        };
        current[i] += 1;
        for j in (i + 1)..k {
            current[j] = current[j - 1] + 1;
        }
    }
}

/// The support subcube of row `i` of `A_C` on `n ≤ 64` vertices.
///
/// Under `A_rand` row `i` is uniform on `{x : x_i = 0}`; under `A_C` with
/// `i ∈ C` it is additionally fixed to `x_j = 1` for `j ∈ C \ {i}`
/// (§4: the definitions of `D_t` and `D_t^C`). Pass an empty clique for
/// the `A_rand` row.
///
/// # Panics
///
/// Panics if `n > 64` or any index is out of range.
pub fn row_subcube(n: u32, i: usize, clique: &[usize]) -> Subcube64 {
    assert!((i as u32) < n, "row index out of range");
    let mut cube = Subcube64::new(n)
        .fixed(i as u32, false)
        .expect("fresh cube accepts any fix");
    if clique.contains(&i) {
        for &j in clique {
            if j != i {
                cube = cube
                    .fixed(j as u32, true)
                    .expect("distinct coordinates cannot conflict");
            }
        }
    }
    cube
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn planted_instance_contains_clique() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = sample_planted(&mut rng, 30, 6);
        assert_eq!(inst.clique.len(), 6);
        for &u in &inst.clique {
            for &v in &inst.clique {
                if u != v {
                    assert!(inst.graph.has_edge(u, v));
                }
            }
        }
    }

    #[test]
    fn clique_is_uniformly_spread() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10;
        let mut counts = vec![0usize; n];
        for _ in 0..2000 {
            let inst = sample_planted(&mut rng, n, 3);
            for &v in &inst.clique {
                counts[v] += 1;
            }
        }
        // Each vertex should appear ~600 times (2000 * 3/10).
        for &c in &counts {
            assert!((c as f64 - 600.0).abs() < 120.0, "count {c}");
        }
    }

    #[test]
    fn all_subsets_counts() {
        assert_eq!(all_subsets(5, 2).len(), 10);
        assert_eq!(all_subsets(6, 3).len(), 20);
        assert_eq!(all_subsets(4, 0), vec![Vec::<usize>::new()]);
        assert_eq!(all_subsets(4, 4).len(), 1);
    }

    #[test]
    fn all_subsets_are_sorted_and_distinct() {
        let subs = all_subsets(7, 3);
        for s in &subs {
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
        let set: std::collections::BTreeSet<_> = subs.iter().cloned().collect();
        assert_eq!(set.len(), subs.len());
    }

    #[test]
    fn row_subcube_rand_row() {
        // No clique: only x_i = 0 is fixed.
        let cube = row_subcube(6, 2, &[]);
        assert_eq!(cube.free_count(), 5);
        assert!(cube.contains(0b000000));
        assert!(!cube.contains(0b000100));
    }

    #[test]
    fn row_subcube_clique_member() {
        // i = 1 in clique {1, 3, 4}: x_1 = 0, x_3 = x_4 = 1.
        let cube = row_subcube(6, 1, &[1, 3, 4]);
        assert_eq!(cube.free_count(), 3);
        assert!(cube.contains(0b011000));
        assert!(!cube.contains(0b001000)); // x_4 = 0
        assert!(!cube.contains(0b011010)); // x_1 = 1
    }

    #[test]
    fn row_subcube_non_member_ignores_clique() {
        let cube = row_subcube(6, 0, &[1, 3]);
        assert_eq!(cube, row_subcube(6, 0, &[]));
    }

    #[test]
    fn sample_with_clique_marginals() {
        // Non-clique edges remain fair coins.
        let mut rng = StdRng::seed_from_u64(3);
        let mut present = 0usize;
        let trials = 3000;
        for _ in 0..trials {
            let g = sample_with_clique(&mut rng, 8, &[0, 1, 2]);
            if g.has_edge(5, 6) {
                present += 1;
            }
        }
        let rate = present as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn subset_sampler_size_and_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let s = sample_subset(&mut rng, 12, 5);
            assert_eq!(s.len(), 5);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(*s.last().unwrap() < 12);
        }
    }

    fn work_counter(snap: &bcc_obs::Snapshot, name: &str) -> u64 {
        snap.work
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    #[test]
    fn planted_samplers_count_their_draws_when_observed() {
        let registry = bcc_obs::Registry::new();
        let _scope = registry.install();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..3 {
            let _ = sample_planted(&mut rng, 16, 4);
        }
        let _ = sample_with_clique(&mut rng, 16, &[0, 1, 2, 3, 4]);
        let snap = registry.snapshot();
        // A_k draws one A_C each, so A_C counts the direct draw too.
        assert_eq!(work_counter(&snap, "graphs.planted.ak_samples"), 3);
        assert_eq!(work_counter(&snap, "graphs.planted.ac_samples"), 4);
        assert_eq!(
            work_counter(&snap, "graphs.planted.clique_vertices"),
            3 * 4 + 5
        );
        // The underlying A_rand draws surface through the digraph counter.
        assert!(work_counter(&snap, "graphs.edges_emitted") > 0);
    }

    #[test]
    fn planted_samplers_are_silent_without_a_registry() {
        // No registry installed on this thread: sampling must neither
        // panic nor leak counters into a registry installed *afterwards*.
        let mut rng = StdRng::seed_from_u64(6);
        let _ = sample_planted(&mut rng, 16, 4);
        let registry = bcc_obs::Registry::new();
        let _scope = registry.install();
        let snap = registry.snapshot();
        assert_eq!(work_counter(&snap, "graphs.planted.ak_samples"), 0);
        assert_eq!(work_counter(&snap, "graphs.planted.ac_samples"), 0);
    }
}
