//! Degree statistics: the `k ≳ √n` regime.
//!
//! §1.2 of the paper: "Once `k` goes substantially above `√n`, it is
//! possible to find the clique by considering the vertices with highest
//! degree" — clique members get `k − 1` guaranteed mutual edges on top of a
//! Binomial(n − k, ¼) base, so their mutual degree is shifted by ≈ `k`
//! against a `√n`-scale standard deviation. Experiment E15 sweeps `k` and
//! watches this detector's success cross over.

use crate::digraph::DiGraph;

/// The mutual degree of every vertex: the number of neighbours with edges
/// in *both* directions.
pub fn mutual_degrees(g: &DiGraph) -> Vec<usize> {
    let m = g.mutual_graph();
    (0..g.n()).map(|v| m.degree(v)).collect()
}

/// The indices of the `k` largest values (ties broken by lower index),
/// sorted ascending.
pub fn top_k_indices(values: &[usize], k: usize) -> Vec<usize> {
    assert!(k <= values.len(), "k exceeds the number of values");
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[b].cmp(&values[a]).then(a.cmp(&b)));
    let mut top: Vec<usize> = idx.into_iter().take(k).collect();
    top.sort_unstable();
    top
}

/// Summary statistics of a degree sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: usize,
    /// Maximum.
    pub max: usize,
}

/// Computes [`DegreeStats`] of a degree sequence.
///
/// # Panics
///
/// Panics if the sequence is empty.
pub fn degree_stats(degrees: &[usize]) -> DegreeStats {
    assert!(!degrees.is_empty(), "empty degree sequence");
    let n = degrees.len() as f64;
    let mean = degrees.iter().sum::<usize>() as f64 / n;
    let var = degrees
        .iter()
        .map(|&d| {
            let diff = d as f64 - mean;
            diff * diff
        })
        .sum::<f64>()
        / n;
    DegreeStats {
        mean,
        std_dev: var.sqrt(),
        min: *degrees.iter().min().expect("non-empty"),
        max: *degrees.iter().max().expect("non-empty"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planted::sample_planted;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn top_k_picks_largest() {
        let vals = [5usize, 1, 9, 7, 3];
        assert_eq!(top_k_indices(&vals, 2), vec![2, 3]);
        assert_eq!(top_k_indices(&vals, 0), Vec::<usize>::new());
    }

    #[test]
    fn top_k_tie_break_is_deterministic() {
        let vals = [4usize, 4, 4, 4];
        assert_eq!(top_k_indices(&vals, 2), vec![0, 1]);
    }

    #[test]
    fn stats_of_constant_sequence() {
        let s = degree_stats(&[3, 3, 3]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!((s.min, s.max), (3, 3));
    }

    #[test]
    fn mutual_degree_mean_near_quarter() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = DiGraph::random(&mut rng, 100);
        let s = degree_stats(&mutual_degrees(&g));
        assert!((s.mean - 99.0 * 0.25).abs() < 4.0, "mean {}", s.mean);
    }

    #[test]
    fn clique_members_have_boosted_mutual_degree() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200;
        let k = 60; // far above sqrt(n): degree detection must work
        let inst = sample_planted(&mut rng, n, k);
        let degs = mutual_degrees(&inst.graph);
        let top = top_k_indices(&degs, k);
        let hits = top.iter().filter(|v| inst.clique.contains(v)).count();
        assert!(
            hits as f64 >= 0.9 * k as f64,
            "only {hits}/{k} clique members in the top-k by degree"
        );
    }
}
