//! Clique verification and maximum-clique search.
//!
//! Appendix B of the paper has the active processors broadcast their
//! induced subgraph and then *everyone locally computes its largest clique*
//! — the model allows unbounded local computation. We implement that local
//! step with Bron–Kerbosch with pivoting over bit-packed candidate sets,
//! which is comfortably fast at the active-set sizes the protocol produces
//! (`n·p = Θ(n log²n / k)` vertices of a density-¼ mutual graph plus the
//! planted part).

use bcc_f2::BitVec;

use crate::digraph::{DiGraph, UGraph};

/// Whether `set` is a clique of the undirected graph.
pub fn is_clique(g: &UGraph, set: &[usize]) -> bool {
    for (a, &u) in set.iter().enumerate() {
        for &v in &set[a + 1..] {
            if u == v || !g.has_edge(u, v) {
                return false;
            }
        }
    }
    true
}

/// Whether `set` is a directed clique (all edges in both directions).
pub fn is_directed_clique(g: &DiGraph, set: &[usize]) -> bool {
    for (a, &u) in set.iter().enumerate() {
        for &v in &set[a + 1..] {
            if u == v || !g.has_edge(u, v) || !g.has_edge(v, u) {
                return false;
            }
        }
    }
    true
}

/// A maximum clique of the undirected graph, via Bron–Kerbosch with
/// pivoting. Returns the vertices sorted.
///
/// Runs in time exponential in the worst case but fast on the random and
/// planted-clique graphs the experiments use; intended for the unbounded
/// local-computation step of Appendix B.
pub fn max_clique(g: &UGraph) -> Vec<usize> {
    let n = g.n();
    let mut best: Vec<usize> = Vec::new();
    let mut r: Vec<usize> = Vec::new();
    let mut p = BitVec::ones(n);
    let mut x = BitVec::zeros(n);
    bron_kerbosch_max(g, &mut r, &mut p, &mut x, &mut best);
    best.sort_unstable();
    best
}

fn bron_kerbosch_max(
    g: &UGraph,
    r: &mut Vec<usize>,
    p: &mut BitVec,
    x: &mut BitVec,
    best: &mut Vec<usize>,
) {
    if p.is_zero() && x.is_zero() {
        if r.len() > best.len() {
            *best = r.clone();
        }
        return;
    }
    // Prune: even taking all of P cannot beat the best.
    if r.len() + p.count_ones() <= best.len() {
        return;
    }
    for v in pivot_candidates(g, p, x) {
        let nv = g.neighbors(v).clone();
        r.push(v);
        let mut p2 = &*p & &nv;
        let mut x2 = &*x & &nv;
        bron_kerbosch_max(g, r, &mut p2, &mut x2, best);
        r.pop();
        p.set(v, false);
        x.set(v, true);
    }
}

/// All maximal cliques of size at least `min_size`, each sorted.
pub fn maximal_cliques(g: &UGraph, min_size: usize) -> Vec<Vec<usize>> {
    let n = g.n();
    let mut out = Vec::new();
    let mut r: Vec<usize> = Vec::new();
    let mut p = BitVec::ones(n);
    let mut x = BitVec::zeros(n);
    bron_kerbosch_all(g, &mut r, &mut p, &mut x, min_size, &mut out);
    for c in &mut out {
        c.sort_unstable();
    }
    out
}

fn bron_kerbosch_all(
    g: &UGraph,
    r: &mut Vec<usize>,
    p: &mut BitVec,
    x: &mut BitVec,
    min_size: usize,
    out: &mut Vec<Vec<usize>>,
) {
    if p.is_zero() && x.is_zero() {
        if r.len() >= min_size {
            out.push(r.clone());
        }
        return;
    }
    if r.len() + p.count_ones() < min_size {
        return;
    }
    for v in pivot_candidates(g, p, x) {
        let nv = g.neighbors(v).clone();
        r.push(v);
        let mut p2 = &*p & &nv;
        let mut x2 = &*x & &nv;
        bron_kerbosch_all(g, r, &mut p2, &mut x2, min_size, out);
        r.pop();
        p.set(v, false);
        x.set(v, true);
    }
}

/// `P \ N(pivot)` where the pivot maximizes `|N(pivot) ∩ P|` over `P ∪ X`
/// (Tomita-style pivoting; the pivot itself stays a candidate when in `P`).
fn pivot_candidates(g: &UGraph, p: &BitVec, x: &BitVec) -> Vec<usize> {
    let pivot = p
        .iter_ones()
        .chain(x.iter_ones())
        .max_by_key(|&u| (g.neighbors(u) & p).count_ones())
        .expect("P ∪ X is non-empty here");
    p.iter_ones().filter(|&v| !g.has_edge(pivot, v)).collect()
}

/// Greedily extends `seed` to a maximal clique containing it.
///
/// # Panics
///
/// Panics if `seed` is not a clique.
pub fn greedy_extend(g: &UGraph, seed: &[usize]) -> Vec<usize> {
    assert!(is_clique(g, seed), "seed must be a clique");
    let mut clique: Vec<usize> = seed.to_vec();
    for v in 0..g.n() {
        if clique.contains(&v) {
            continue;
        }
        if clique.iter().all(|&u| g.has_edge(u, v)) {
            clique.push(v);
        }
    }
    clique.sort_unstable();
    clique
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path_graph(n: usize) -> UGraph {
        let mut g = UGraph::empty(n);
        for i in 0..n - 1 {
            g.set_edge(i, i + 1, true);
        }
        g
    }

    fn complete_graph(n: usize) -> UGraph {
        let mut g = UGraph::empty(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.set_edge(u, v, true);
            }
        }
        g
    }

    #[test]
    fn is_clique_basics() {
        let mut g = UGraph::empty(4);
        g.set_edge(0, 1, true);
        g.set_edge(1, 2, true);
        g.set_edge(0, 2, true);
        assert!(is_clique(&g, &[0, 1, 2]));
        assert!(!is_clique(&g, &[0, 1, 3]));
        assert!(is_clique(&g, &[2]));
        assert!(is_clique(&g, &[]));
    }

    #[test]
    fn directed_clique_needs_both_arcs() {
        let mut g = DiGraph::empty(3);
        g.set_edge(0, 1, true);
        assert!(!is_directed_clique(&g, &[0, 1]));
        g.set_edge(1, 0, true);
        assert!(is_directed_clique(&g, &[0, 1]));
    }

    #[test]
    fn max_clique_of_path_is_edge() {
        let g = path_graph(6);
        assert_eq!(max_clique(&g).len(), 2);
    }

    #[test]
    fn max_clique_on_complete_graph() {
        assert_eq!(max_clique(&complete_graph(7)), (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn max_clique_finds_planted() {
        let mut rng = StdRng::seed_from_u64(1);
        let planted = [3usize, 9, 17, 25, 31, 38, 39];
        let mut g = UGraph::random(&mut rng, 40, 0.25);
        for &u in &planted {
            for &v in &planted {
                if u != v {
                    g.set_edge(u, v, true);
                }
            }
        }
        let c = max_clique(&g);
        assert!(is_clique(&g, &c));
        assert!(c.len() >= planted.len());
    }

    #[test]
    fn max_clique_random_graph_is_small() {
        // Θ(log n) cliques in G(n, 1/4): for n = 60, max clique stays small.
        let mut rng = StdRng::seed_from_u64(2);
        let g = UGraph::random(&mut rng, 60, 0.25);
        let c = max_clique(&g);
        assert!(is_clique(&g, &c));
        assert!((2..=9).contains(&c.len()), "size {}", c.len());
    }

    #[test]
    fn maximal_cliques_of_triangle_plus_pendant() {
        let mut g = UGraph::empty(4);
        g.set_edge(0, 1, true);
        g.set_edge(1, 2, true);
        g.set_edge(0, 2, true);
        g.set_edge(2, 3, true);
        let mut all = maximal_cliques(&g, 1);
        all.sort();
        assert_eq!(all, vec![vec![0, 1, 2], vec![2, 3]]);
    }

    #[test]
    fn maximal_cliques_respect_min_size() {
        let g = path_graph(5);
        let all = maximal_cliques(&g, 3);
        assert!(all.is_empty());
        let edges = maximal_cliques(&g, 2);
        assert_eq!(edges.len(), 4);
    }

    #[test]
    fn maximal_cliques_are_maximal_and_distinct() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = UGraph::random(&mut rng, 18, 0.4);
        let all = maximal_cliques(&g, 1);
        let set: std::collections::BTreeSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), all.len(), "no duplicates");
        for c in &all {
            assert!(is_clique(&g, c));
            for v in 0..g.n() {
                if !c.contains(&v) {
                    assert!(
                        !c.iter().all(|&u| g.has_edge(u, v)),
                        "clique {c:?} not maximal at {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn greedy_extend_is_maximal() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = UGraph::random(&mut rng, 30, 0.5);
        let c = greedy_extend(&g, &[]);
        assert!(is_clique(&g, &c));
        for v in 0..30 {
            if !c.contains(&v) {
                assert!(!c.iter().all(|&u| g.has_edge(u, v)), "not maximal at {v}");
            }
        }
    }

    #[test]
    fn max_clique_agrees_with_enumeration() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let g = UGraph::random(&mut rng, 14, 0.5);
            let best = max_clique(&g);
            let all = maximal_cliques(&g, 1);
            let enumerated_best = all.iter().map(Vec::len).max().unwrap_or(0);
            assert_eq!(best.len(), enumerated_best);
        }
    }
}
