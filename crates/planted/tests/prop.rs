//! Property-based tests for the planted-clique crate.

use bcc_congest::run_turn_protocol;
use bcc_graphs::clique::is_directed_clique;
use bcc_graphs::planted::{row_subcube, sample_planted};
use bcc_planted::lemmas::{lemma_1_10_mean, lemma_4_4_mean};
use bcc_planted::protocols::suspect_intersection;
use bcc_planted::{bounds, clique_input, rand_input};
use bcc_stats::TruthTable;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn planted_instances_contain_directed_cliques(
        n in 4usize..40,
        frac in 0.2f64..0.9,
        seed in any::<u64>(),
    ) {
        let k = ((n as f64 * frac) as usize).clamp(2, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = sample_planted(&mut rng, n, k);
        prop_assert_eq!(inst.clique.len(), k);
        prop_assert!(is_directed_clique(&inst.graph, &inst.clique));
    }

    #[test]
    fn row_subcube_counts(n in 2u32..16, i in 0usize..16, seed in any::<u64>()) {
        prop_assume!((i as u32) < n);
        let mut rng = StdRng::seed_from_u64(seed);
        let k = 2 + (seed as usize % 3).min(n as usize - 2);
        let clique = bcc_graphs::planted::sample_subset(&mut rng, n as usize, k);
        let cube = row_subcube(n, i, &clique);
        // Free coordinates: n - 1 (diagonal) - (k-1 if i in clique else 0).
        let expected = if clique.contains(&i) {
            n - k as u32
        } else {
            n - 1
        };
        prop_assert_eq!(cube.free_count(), expected);
    }

    #[test]
    fn lemma_1_10_holds_for_random_functions(n in 4u32..14, seed in any::<u64>()) {
        let f = TruthTable::random(&mut StdRng::seed_from_u64(seed), n);
        prop_assert!(lemma_1_10_mean(&f) <= bounds::lemma_1_10(n as usize));
    }

    #[test]
    fn lemma_4_4_holds_on_arbitrary_large_domains(
        n in 6u32..12,
        seed in any::<u64>(),
        keep in 0.4f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let domain: Vec<u64> = (0..(1u64 << n))
            .filter(|_| rand::Rng::gen::<f64>(&mut rng) < keep)
            .collect();
        prop_assume!(domain.len() >= 1 << (n - 1)); // t <= 1
        let f = TruthTable::random(&mut rng, n);
        let got = lemma_4_4_mean(&f, &domain);
        prop_assert!(got <= bounds::lemma_4_4(n as usize, 1));
    }

    #[test]
    fn engine_inputs_match_graph_samples(n in 4u32..12, seed in any::<u64>()) {
        // Any sampled A_C graph row is in the corresponding engine support.
        let mut rng = StdRng::seed_from_u64(seed);
        let k = 2;
        let inst = sample_planted(&mut rng, n as usize, k);
        let input = clique_input(n, &inst.clique);
        for i in 0..n as usize {
            let packed: u64 = inst
                .graph
                .row(i)
                .iter_ones()
                .map(|j| 1u64 << j)
                .sum();
            prop_assert!(input.row(i).points().contains(&packed));
        }
    }

    #[test]
    fn transcripts_under_rand_input_are_valid(n in 2u32..8, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let proto = suspect_intersection(n, 2);
        let input = rand_input(n);
        let x = input.sample(&mut rng);
        let t = run_turn_protocol(&proto, &x);
        prop_assert_eq!(t.len(), 2 * n);
    }

    #[test]
    fn theorem_bounds_are_monotone(n in 16usize..4096, k in 1usize..8, j in 1usize..5) {
        prop_assert!(bounds::theorem_1_6(n, k + 1) > bounds::theorem_1_6(n, k));
        prop_assert!(bounds::theorem_4_1(n, k, j + 1) > bounds::theorem_4_1(n, k, j));
        prop_assert!(bounds::theorem_1_6(4 * n, k) < bounds::theorem_1_6(n, k));
    }
}
