//! Planted-clique inputs for the exact transcript engine.
//!
//! Row `i` of `A_C` is uniform over the subcube
//! `{x : x_i = 0, x_j = 1 ∀ j ∈ C \ {i}}` and the rows are independent —
//! the structural fact (§3, footnote 13) that lets the engine compute
//! transcript distributions exactly. `A_k` itself has *dependent* rows, so
//! it enters only as the mixture `avg_C A_C` ([`clique_family`]), exactly
//! as in the paper's decomposition.

use bcc_core::{ProductInput, RowSupport};
use bcc_graphs::planted::{all_subsets, row_subcube};

/// `A_rand` on `n ≤ 20` vertices as a product input: row `i` uniform on
/// `{x ∈ {0,1}^n : x_i = 0}`.
///
/// # Panics
///
/// Panics if `n > 20` (supports are enumerated; `2^n` points each).
pub fn rand_input(n: u32) -> ProductInput {
    assert!(n <= 20, "exact planted-clique inputs limited to n <= 20");
    ProductInput::new(
        (0..n as usize)
            .map(|i| RowSupport::from_subcube(&row_subcube(n, i, &[])))
            .collect(),
    )
}

/// `A_C` for a fixed clique `C`.
///
/// # Panics
///
/// Panics if `n > 20` or `clique` has out-of-range vertices.
pub fn clique_input(n: u32, clique: &[usize]) -> ProductInput {
    assert!(n <= 20, "exact planted-clique inputs limited to n <= 20");
    ProductInput::new(
        (0..n as usize)
            .map(|i| RowSupport::from_subcube(&row_subcube(n, i, clique)))
            .collect(),
    )
}

/// The full decomposition family of `A_k`: one member per size-`k` subset
/// `C` of `[n]` — `binomial(n, k)` members.
///
/// # Panics
///
/// Panics if `n > 20` or the family would exceed 5000 members.
pub fn clique_family(n: u32, k: usize) -> Vec<ProductInput> {
    let subsets = all_subsets(n as usize, k);
    assert!(
        subsets.len() <= 5000,
        "family of {} members too large for the exact walk",
        subsets.len()
    );
    subsets.iter().map(|c| clique_input(n, c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rand_rows_fix_only_the_diagonal() {
        let input = rand_input(6);
        assert_eq!(input.n(), 6);
        for i in 0..6 {
            assert_eq!(input.row(i).len(), 32); // 2^(n-1)
            assert!(input.row(i).points().iter().all(|&x| (x >> i) & 1 == 0));
        }
    }

    #[test]
    fn clique_rows_fix_clique_edges() {
        let input = clique_input(6, &[1, 3, 5]);
        // Row 1: x_1 = 0, x_3 = x_5 = 1 -> 8 free points.
        assert_eq!(input.row(1).len(), 8);
        for &x in input.row(1).points() {
            assert_eq!(x & 0b101010, 0b101000);
        }
        // Row 0 is not in the clique: only x_0 = 0.
        assert_eq!(input.row(0).len(), 32);
    }

    #[test]
    fn family_size_is_binomial() {
        assert_eq!(clique_family(6, 2).len(), 15);
        assert_eq!(clique_family(7, 3).len(), 35);
    }

    #[test]
    fn family_members_are_distinct() {
        let fam = clique_family(5, 2);
        let mut keys: Vec<Vec<u64>> = fam
            .iter()
            .map(|m| {
                (0..m.n())
                    .flat_map(|i| m.row(i).points().iter().copied())
                    .collect()
            })
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), fam.len());
    }
}
