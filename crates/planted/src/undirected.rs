//! The *undirected* planted clique — the paper's §9 open problem, explored
//! empirically.
//!
//! In the undirected problem each unordered pair carries one shared bit,
//! so processor `i`'s row and processor `j`'s row agree at the `{i,j}`
//! entry: the rows are **dependent**, the §3 decomposition into
//! row-independent members does not apply, and the paper leaves the lower
//! bound open ("we believe it may be possible to extend the framework…").
//!
//! This module supplies the distributions, the row-dependence measurement
//! (a direct witness of *why* the framework's precondition fails), and
//! Monte-Carlo transcript-distance experiments showing that natural
//! protocols behave just as in the directed case — evidence for the
//! paper's conjecture.

use bcc_congest::TurnProtocol;
use bcc_core::sample::{sampled_comparison_with, SampledComparison};
use bcc_graphs::digraph::UGraph;
use bcc_graphs::planted::sample_subset;
use rand::Rng;

/// Samples the undirected `A_rand`: `G(n, ½)` as packed symmetric rows,
/// one `u64` per processor (`n ≤ 63`).
pub fn sample_rows_rand<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<u64> {
    let g = UGraph::random(rng, n, 0.5);
    rows_of(&g)
}

/// Samples the undirected `A_k`: `G(n, ½)` with a planted `k`-clique.
pub fn sample_rows_planted<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<u64> {
    let mut g = UGraph::random(rng, n, 0.5);
    let clique = sample_subset(rng, n, k);
    for (a, &u) in clique.iter().enumerate() {
        for &v in &clique[a + 1..] {
            g.set_edge(u, v, true);
        }
    }
    rows_of(&g)
}

fn rows_of(g: &UGraph) -> Vec<u64> {
    (0..g.n())
        .map(|i| {
            let mut row = 0u64;
            for j in 0..g.n() {
                if i != j && g.has_edge(i, j) {
                    row |= 1 << j;
                }
            }
            row
        })
        .collect()
}

/// The empirical correlation between entry `(i, j)` of row `i` and entry
/// `(j, i)` of row `j` — exactly 1 for undirected inputs (shared bit),
/// ≈ 0 for directed ones. This is the row-dependence that blocks the §3
/// decomposition.
pub fn row_dependence<R, F>(mut sampler: F, n: usize, trials: usize, rng: &mut R) -> f64
where
    R: Rng + ?Sized,
    F: FnMut(&mut R) -> Vec<u64>,
{
    assert!(n >= 2, "need two processors to correlate");
    assert!(trials > 0, "need at least one trial");
    let (i, j) = (0usize, 1usize);
    let mut agree = 0usize;
    for _ in 0..trials {
        let rows = sampler(rng);
        let a = (rows[i] >> j) & 1;
        let b = (rows[j] >> i) & 1;
        if a == b {
            agree += 1;
        }
    }
    // Map agreement rate to a correlation-like score in [0, 1]:
    // 0.5 (independent fair bits) -> 0, 1.0 (shared bit) -> 1.
    (2.0 * (agree as f64 / trials as f64 - 0.5)).clamp(0.0, 1.0)
}

/// Monte-Carlo transcript distance between undirected `A_rand` and
/// undirected `A_k` for a given protocol.
pub fn sampled_experiment<P, R>(
    protocol: &P,
    n: usize,
    k: usize,
    samples: usize,
    rng: &mut R,
) -> SampledComparison
where
    P: TurnProtocol + ?Sized,
    R: Rng + ?Sized,
{
    sampled_comparison_with(
        protocol,
        |rng| sample_rows_rand(rng, n),
        |rng| sample_rows_planted(rng, n, k),
        samples,
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{degree_threshold, suspect_intersection};
    use bcc_graphs::planted::sample_rand as sample_directed;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rows_are_symmetric() {
        let mut rng = StdRng::seed_from_u64(1);
        let rows = sample_rows_rand(&mut rng, 10);
        for i in 0..10 {
            assert_eq!((rows[i] >> i) & 1, 0, "no self-loop");
            for j in 0..10 {
                assert_eq!(
                    (rows[i] >> j) & 1,
                    (rows[j] >> i) & 1,
                    "symmetry at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn planted_rows_boost_edge_density() {
        // Planting a 5-clique adds ~C(5,2)/2 = 5 expected edges; compare
        // mean total ones across many samples against the plain model.
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 300;
        let mean_ones = |planted: bool, rng: &mut StdRng| -> f64 {
            (0..trials)
                .map(|_| {
                    let rows = if planted {
                        sample_rows_planted(rng, 12, 5)
                    } else {
                        sample_rows_rand(rng, 12)
                    };
                    rows.iter().map(|r| r.count_ones() as f64).sum::<f64>()
                })
                .sum::<f64>()
                / trials as f64
        };
        let plain = mean_ones(false, &mut rng);
        let planted = mean_ones(true, &mut rng);
        assert!(
            planted > plain + 5.0,
            "expected ~10 extra half-edges: {plain} -> {planted}"
        );
    }

    #[test]
    fn undirected_rows_are_dependent_directed_are_not() {
        let mut rng = StdRng::seed_from_u64(3);
        let undirected = row_dependence(|r| sample_rows_rand(r, 8), 8, 4000, &mut rng);
        assert!(undirected > 0.95, "shared bits: dependence {undirected}");
        let directed = row_dependence(
            |r| {
                let g = sample_directed(r, 8);
                (0..8)
                    .map(|i| {
                        (0..8)
                            .filter(|&j| g.has_edge(i, j))
                            .map(|j| 1u64 << j)
                            .sum()
                    })
                    .collect()
            },
            8,
            4000,
            &mut rng,
        );
        assert!(directed < 0.1, "directed edges independent: {directed}");
    }

    #[test]
    fn small_clique_is_invisible_to_sampled_protocols() {
        // The §9 conjecture's shape: for k far below sqrt(n), the sampled
        // transcript distance stays at the noise floor.
        let mut rng = StdRng::seed_from_u64(4);
        let n = 12usize;
        let proto = suspect_intersection(n as u32, 1);
        let cmp = sampled_experiment(&proto, n, 2, 30_000, &mut rng);
        assert!(
            cmp.tv <= cmp.noise_floor() + 0.05,
            "tv {} floor {}",
            cmp.tv,
            cmp.noise_floor()
        );
    }

    #[test]
    fn large_clique_is_visible() {
        // Sanity: a huge clique IS detectable (k comparable to n) — the
        // estimator is not blind.
        let mut rng = StdRng::seed_from_u64(5);
        let n = 12usize;
        let proto = degree_threshold(n as u32, 1, 7);
        let cmp = sampled_experiment(&proto, n, 8, 30_000, &mut rng);
        assert!(cmp.tv > 0.2, "tv {} should be large for k = 8", cmp.tv);
    }
}
