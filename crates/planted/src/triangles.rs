//! Triangle counting in the Broadcast Congested Clique — the first entry
//! of the paper's §9 list of problems its technique should extend to.
//!
//! Two protocols:
//!
//! * [`exact_count_protocol`] — the trivial upper bound: everyone
//!   broadcasts their whole row (`n − 1` useful bits ⇒ `n` rounds of
//!   `BCAST(1)` with our padding), then counts locally.
//! * [`sampled_count_protocol`] — a sublinear-round estimator: in each of
//!   `s` rounds a publicly-known random vertex pair is probed; processors
//!   broadcast their adjacency bit to the pair and everyone tallies the
//!   wedge-closure rate. Rounds `s ≪ n` at the cost of sampling error.
//!
//! The experiment side pairs `A_rand` with `A_k`: triangle counts are a
//! *global* statistic whose planted shift is `Θ(k³)` against a `Θ(n^{3/2})`
//! standard deviation — another face of the `k ≈ √n` crossover.

use bcc_congest::{Model, Network};
use bcc_f2::BitVec;
use bcc_graphs::digraph::{DiGraph, UGraph};
use rand::Rng;

/// The number of triangles of the undirected graph (triples with all
/// three edges).
pub fn triangle_count(g: &UGraph) -> u64 {
    let n = g.n();
    let mut count = 0u64;
    for u in 0..n {
        for v in (u + 1)..n {
            if !g.has_edge(u, v) {
                continue;
            }
            // Common neighbours above v close triangles (u < v < w).
            let common = g.neighbors(u) & g.neighbors(v);
            count += common.iter_ones().filter(|&w| w > v).count() as u64;
        }
    }
    count
}

/// The number of *mutual* triangles of a directed graph (triangles of the
/// mutual graph — the object the planted clique boosts).
pub fn mutual_triangle_count(g: &DiGraph) -> u64 {
    triangle_count(&g.mutual_graph())
}

/// The expected mutual-triangle count of `A_rand`:
/// `C(n,3) · (1/4)³` (each mutual edge has probability ¼).
pub fn expected_triangles_rand(n: usize) -> f64 {
    let c3 = (n * (n - 1) * (n - 2)) as f64 / 6.0;
    c3 / 64.0
}

/// The outcome of a distributed triangle-counting protocol.
#[derive(Debug, Clone, Copy)]
pub struct TriangleOutcome {
    /// The (exact or estimated) mutual-triangle count.
    pub count: f64,
    /// `BCAST(1)` rounds used.
    pub rounds_used: usize,
}

/// The trivial exact protocol: every processor broadcasts its full row
/// (`n` bits ⇒ `n` rounds), then counts locally.
pub fn exact_count_protocol(g: &DiGraph) -> TriangleOutcome {
    let n = g.n();
    let mut net = Network::new(Model::bcast1(n));
    let payloads: Vec<BitVec> = (0..n).map(|i| g.row(i).clone()).collect();
    let rounds = net.broadcast_bits(&payloads);
    let heard = net.collect_bits(rounds, n);
    // Everyone reconstructs the graph and counts.
    let mut mutual = UGraph::empty(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if heard[u].get(v) && heard[v].get(u) {
                mutual.set_edge(u, v, true);
            }
        }
    }
    TriangleOutcome {
        count: triangle_count(&mutual) as f64,
        rounds_used: net.rounds_used(),
    }
}

/// The sampling estimator: probes `samples` random ordered triples using
/// public randomness; each probe costs one round (processors `u`, `v`
/// and `w` of the triple broadcast their three adjacency bits — everyone
/// else pads). The estimate is `closure_rate · C(n,3)`.
///
/// # Panics
///
/// Panics if `n < 3` or `samples == 0`.
pub fn sampled_count_protocol<R: Rng + ?Sized>(
    g: &DiGraph,
    samples: usize,
    rng: &mut R,
) -> TriangleOutcome {
    let n = g.n();
    assert!(n >= 3, "need at least three vertices");
    assert!(samples > 0, "need at least one probe");
    let mut net = Network::new(Model::bcast1(n));
    let mut closed = 0u64;
    for _ in 0..samples {
        // Public random distinct triple (u, v, w).
        let mut triple = [0usize; 3];
        loop {
            for t in &mut triple {
                *t = rng.gen_range(0..n);
            }
            if triple[0] != triple[1] && triple[1] != triple[2] && triple[0] != triple[2] {
                break;
            }
        }
        let [u, v, w] = triple;
        // One round: u broadcasts (u<->v mutual from its side: u->v),
        // v broadcasts v->w side, w broadcasts w->u side... mutual edges
        // need both directions, so probe two bits per processor packed
        // into one BCAST(1) round each? One bit per round: use 2 rounds
        // per probe — u says u->v AND u->w? That is 2 bits. Keep the
        // model honest: 2 rounds per probe, each processor 1 bit.
        let msgs_a: Vec<u64> = (0..n)
            .map(|i| {
                if i == u {
                    u64::from(g.has_edge(u, v))
                } else if i == v {
                    u64::from(g.has_edge(v, w))
                } else if i == w {
                    u64::from(g.has_edge(w, u))
                } else {
                    0
                }
            })
            .collect();
        let msgs_b: Vec<u64> = (0..n)
            .map(|i| {
                if i == u {
                    u64::from(g.has_edge(u, w))
                } else if i == v {
                    u64::from(g.has_edge(v, u))
                } else if i == w {
                    u64::from(g.has_edge(w, v))
                } else {
                    0
                }
            })
            .collect();
        let a = net.broadcast_round(&msgs_a).to_vec();
        let b = net.broadcast_round(&msgs_b).to_vec();
        let uv = a[u] == 1 && b[v] == 1;
        let vw = a[v] == 1 && b[w] == 1;
        let wu = a[w] == 1 && b[u] == 1;
        if uv && vw && wu {
            closed += 1;
        }
    }
    let c3 = (n * (n - 1) * (n - 2)) as f64 / 6.0;
    // Ordered distinct triples hit each unordered triangle 6 ways.
    let rate = closed as f64 / samples as f64;
    TriangleOutcome {
        count: rate * c3,
        rounds_used: net.rounds_used(),
    }
}

/// Measures how well the (exact) triangle count separates `A_rand` from
/// `A_k`: returns `(mean_rand, mean_planted, std_rand)` over `trials`.
pub fn separation<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    trials: usize,
    rng: &mut R,
) -> (f64, f64, f64) {
    assert!(trials > 1, "need at least two trials for a variance");
    let mut rand_counts = Vec::with_capacity(trials);
    let mut planted_counts = Vec::with_capacity(trials);
    for _ in 0..trials {
        rand_counts.push(mutual_triangle_count(&DiGraph::random(rng, n)) as f64);
        let inst = bcc_graphs::planted::sample_planted(rng, n, k);
        planted_counts.push(mutual_triangle_count(&inst.graph) as f64);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let m_r = mean(&rand_counts);
    let m_p = mean(&planted_counts);
    let var = rand_counts
        .iter()
        .map(|c| (c - m_r) * (c - m_r))
        .sum::<f64>()
        / (trials - 1) as f64;
    (m_r, m_p, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn triangle_graph() -> UGraph {
        let mut g = UGraph::empty(5);
        g.set_edge(0, 1, true);
        g.set_edge(1, 2, true);
        g.set_edge(0, 2, true);
        g.set_edge(2, 3, true);
        g
    }

    #[test]
    fn counts_a_single_triangle() {
        assert_eq!(triangle_count(&triangle_graph()), 1);
    }

    #[test]
    fn complete_graph_count() {
        let mut g = UGraph::empty(6);
        for u in 0..6 {
            for v in (u + 1)..6 {
                g.set_edge(u, v, true);
            }
        }
        assert_eq!(triangle_count(&g), 20); // C(6,3)
    }

    #[test]
    fn random_count_matches_expectation() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 60;
        let trials = 40;
        let mean: f64 = (0..trials)
            .map(|_| mutual_triangle_count(&DiGraph::random(&mut rng, n)) as f64)
            .sum::<f64>()
            / trials as f64;
        let expect = expected_triangles_rand(n);
        assert!(
            (mean - expect).abs() < 0.15 * expect,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn exact_protocol_counts_and_costs_n_rounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = DiGraph::random(&mut rng, 24);
        let out = exact_count_protocol(&g);
        assert_eq!(out.count, mutual_triangle_count(&g) as f64);
        assert_eq!(out.rounds_used, 24);
    }

    #[test]
    fn sampled_protocol_is_sublinear_and_unbiased() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 40;
        // A graph with many triangles: plant a big clique.
        let inst = bcc_graphs::planted::sample_planted(&mut rng, n, 20);
        let truth = mutual_triangle_count(&inst.graph) as f64;
        let samples = 4000;
        let out = sampled_count_protocol(&inst.graph, samples, &mut rng);
        assert_eq!(out.rounds_used, 2 * samples);
        assert!(
            (out.count - truth).abs() < 0.5 * truth + 50.0,
            "estimate {} vs truth {truth}",
            out.count
        );
    }

    #[test]
    fn planted_clique_boosts_triangles_by_k_choose_3() {
        let mut rng = StdRng::seed_from_u64(4);
        let (n, k) = (80usize, 30usize);
        let (m_rand, m_planted, _) = separation(n, k, 30, &mut rng);
        let boost = m_planted - m_rand;
        // The planted clique contributes ~ C(k,3) certain triangles (plus
        // mixed terms); check the right order.
        let kc3 = (k * (k - 1) * (k - 2)) as f64 / 6.0;
        assert!(boost > 0.5 * kc3, "boost {boost} vs C(k,3) = {kc3}");
    }

    #[test]
    fn small_clique_hides_in_triangle_noise() {
        // k^3 << n^{3/2}: the shift drowns in the standard deviation —
        // the §9 conjecture's quantitative face.
        let mut rng = StdRng::seed_from_u64(5);
        let (n, k) = (100usize, 4usize);
        let (m_rand, m_planted, std_rand) = separation(n, k, 30, &mut rng);
        assert!(
            (m_planted - m_rand).abs() < 2.0 * std_rand,
            "shift {} vs noise {std_rand}",
            m_planted - m_rand
        );
    }
}
