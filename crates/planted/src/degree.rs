//! The high-degree heuristic for `k ≳ √n` (§1.2 of the paper).
//!
//! "Once `k` goes substantially above `√n`, it is possible to find the
//! clique by considering the vertices with highest degree": a clique
//! member's out-degree is `Binomial(n − k, ½) + (k − 1)` versus a
//! non-member's `Binomial(n − 1, ½)` — a shift of `≈ k/2` against a
//! `√n/2` standard deviation. One `BCAST(log n)` round (everyone
//! broadcasts its out-degree) suffices; the crossover experiment E15
//! sweeps `k` through `√n` to watch this detector switch on exactly where
//! the lower bound's `O(k²/√n)` bound becomes vacuous.

use bcc_congest::{Model, Network};
use bcc_graphs::degree::top_k_indices;
use bcc_graphs::digraph::DiGraph;

/// The outcome of the degree protocol.
#[derive(Debug, Clone)]
pub struct DegreeOutcome {
    /// The `k` vertices of the highest out-degree, sorted.
    pub candidates: Vec<usize>,
    /// Rounds consumed (1 in `BCAST(log n)`; `⌈log n⌉` in `BCAST(1)`).
    pub rounds_used: usize,
}

impl DegreeOutcome {
    /// The fraction of `clique` contained in the candidate set.
    pub fn recall(&self, clique: &[usize]) -> f64 {
        if clique.is_empty() {
            return 1.0;
        }
        let hits = clique
            .iter()
            .filter(|v| self.candidates.binary_search(v).is_ok())
            .count();
        hits as f64 / clique.len() as f64
    }

    /// Whether the candidates are exactly the clique.
    pub fn exact(&self, clique: &[usize]) -> bool {
        self.candidates == clique
    }
}

/// Runs the degree protocol: one `BCAST(log n)` round of out-degrees,
/// then everyone locally takes the top `k`.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn degree_protocol(graph: &DiGraph, k: usize) -> DegreeOutcome {
    let n = graph.n();
    assert!(k <= n, "clique size exceeds vertex count");
    let mut net = Network::new(Model::bcast_log(n.max(2)));
    // An out-degree is at most n-1 < n, so it fits one BCAST(log n)
    // message.
    let degrees: Vec<u64> = (0..n).map(|i| graph.out_degree(i) as u64).collect();
    let heard: Vec<usize> = net
        .broadcast_round(&degrees)
        .iter()
        .map(|&d| d as usize)
        .collect();
    DegreeOutcome {
        candidates: top_k_indices(&heard, k),
        rounds_used: net.rounds_used(),
    }
}

/// Success statistics of the degree protocol over planted instances.
#[derive(Debug, Clone, Copy)]
pub struct DegreeStatsSummary {
    /// Mean recall (fraction of the clique among the top-k degrees).
    pub mean_recall: f64,
    /// Fraction of runs with exact recovery.
    pub exact_rate: f64,
}

/// Measures the degree protocol on `trials` planted instances.
pub fn measure_degree<R: rand::Rng + ?Sized>(
    n: usize,
    k: usize,
    trials: usize,
    rng: &mut R,
) -> DegreeStatsSummary {
    assert!(trials > 0, "need at least one trial");
    let mut recall = 0.0;
    let mut exact = 0usize;
    for _ in 0..trials {
        let inst = bcc_graphs::planted::sample_planted(rng, n, k);
        let out = degree_protocol(&inst.graph, k);
        recall += out.recall(&inst.clique);
        if out.exact(&inst.clique) {
            exact += 1;
        }
    }
    DegreeStatsSummary {
        mean_recall: recall / trials as f64,
        exact_rate: exact as f64 / trials as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graphs::planted::{sample_planted, sample_rand};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn one_round_in_bcast_log() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = sample_rand(&mut rng, 64);
        let out = degree_protocol(&g, 8);
        assert_eq!(out.rounds_used, 1);
        assert_eq!(out.candidates.len(), 8);
    }

    #[test]
    fn large_clique_is_recovered() {
        // k = 4·sqrt(n log n) ≈ far above the threshold.
        let mut rng = StdRng::seed_from_u64(2);
        let n = 400;
        let k = 180;
        let inst = sample_planted(&mut rng, n, k);
        let out = degree_protocol(&inst.graph, k);
        assert!(
            out.recall(&inst.clique) > 0.95,
            "recall {}",
            out.recall(&inst.clique)
        );
    }

    #[test]
    fn small_clique_is_missed() {
        // k far below sqrt(n): degree gives nothing beyond chance.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 400;
        let k = 8; // sqrt(400) = 20
        let mut recall = 0.0;
        let trials = 30;
        for _ in 0..trials {
            let inst = sample_planted(&mut rng, n, k);
            let out = degree_protocol(&inst.graph, k);
            recall += out.recall(&inst.clique);
        }
        recall /= trials as f64;
        // Chance level is k/n = 0.02; allow up to 0.3.
        assert!(recall < 0.3, "recall {recall} too high for tiny k");
    }

    #[test]
    fn recall_is_monotone_in_k_through_the_crossover() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 256;
        let r_small = measure_degree(n, 8, 20, &mut rng).mean_recall;
        let r_big = measure_degree(n, 128, 20, &mut rng).mean_recall;
        assert!(r_big > r_small + 0.3, "{r_small} -> {r_big}");
    }

    #[test]
    fn recall_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let inst = sample_planted(&mut rng, 100, 30);
        let out = degree_protocol(&inst.graph, 30);
        let r = out.recall(&inst.clique);
        assert!((0.0..=1.0).contains(&r));
    }
}
