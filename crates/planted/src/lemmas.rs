//! The statistical inequalities behind the lower bound, evaluated exactly.
//!
//! The paper quantifies over all Boolean functions; these harnesses
//! evaluate the left-hand sides *exactly* (full enumeration) for concrete
//! functions, so experiments can confront measured values with the bounds:
//!
//! * **Lemma 1.10** — `E_{i←[n]} ‖f(U) − f(U^{[i]})‖ ≤ O(1/√n)`;
//!   majority witnesses tightness `Θ(1/√n)`.
//! * **Lemma 1.8** — `E_{C∼S_k} ‖f(U) − f(U^C)‖ ≤ O(k/√n)`.
//! * **Lemma 4.4** — the same with the uniform distribution restricted to
//!   an arbitrary large domain `D`, paying `√(t/n)` for `|D| = 2^{n−t}`.
//! * **Lemma 4.3** — the clique version on a restricted domain.
//!
//! Per the paper's convention (Lemma 4.3), the distance is 1 when the
//! restricted support is empty.

use bcc_f2::subcube::Subcube64;
use bcc_graphs::planted::{all_subsets, sample_subset};
use bcc_stats::TruthTable;
use rand::Rng;

/// **Lemma 1.10** left-hand side, exactly:
/// `E_{i←[n]} | E_{U}[f] − E_{U^{[i]}}[f] |`.
pub fn lemma_1_10_mean(f: &TruthTable) -> f64 {
    let n = f.arity();
    let base = f.mean();
    let mut total = 0.0;
    for i in 0..n {
        let cube = Subcube64::new(n).fixed(i, true).expect("fresh fix");
        total += (f.mean_on_subcube(&cube) - base).abs();
    }
    total / n as f64
}

/// **Lemma 1.8** left-hand side, exactly (all `binomial(n,k)` cliques):
/// `E_{C∼S_k^{[n]}} | E_U[f] − E_{U^C}[f] |`.
///
/// # Panics
///
/// Panics if the number of subsets exceeds 50 000 (use
/// [`lemma_1_8_sampled`] instead).
pub fn lemma_1_8_exact(f: &TruthTable, k: usize) -> f64 {
    let n = f.arity();
    let subsets = all_subsets(n as usize, k);
    assert!(subsets.len() <= 50_000, "too many cliques; sample instead");
    let base = f.mean();
    let total: f64 = subsets
        .iter()
        .map(|c| (f.mean_on_subcube(&ones_cube(n, c)) - base).abs())
        .sum();
    total / subsets.len() as f64
}

/// **Lemma 1.8** left-hand side estimated over `samples` random cliques.
pub fn lemma_1_8_sampled<R: Rng + ?Sized>(
    f: &TruthTable,
    k: usize,
    samples: usize,
    rng: &mut R,
) -> f64 {
    assert!(samples > 0, "need at least one sample");
    let n = f.arity();
    let base = f.mean();
    let total: f64 = (0..samples)
        .map(|_| {
            let c = sample_subset(rng, n as usize, k);
            (f.mean_on_subcube(&ones_cube(n, &c)) - base).abs()
        })
        .sum();
    total / samples as f64
}

/// **Lemma 4.4** left-hand side, exactly, on a restricted domain `D`
/// (points as packed `n`-bit values):
/// `E_{i←[n]} ‖f(U_D) − f(U_D^{[i]})‖`, distance 1 on empty restriction.
///
/// # Panics
///
/// Panics if `D` is empty.
pub fn lemma_4_4_mean(f: &TruthTable, domain: &[u64]) -> f64 {
    let n = f.arity();
    let base = f.mean_on_domain(domain).expect("domain must be non-empty");
    let mut total = 0.0;
    for i in 0..n {
        let restricted: Vec<u64> = domain
            .iter()
            .copied()
            .filter(|&x| (x >> i) & 1 == 1)
            .collect();
        total += match f.mean_on_domain(&restricted) {
            Some(m) => (m - base).abs(),
            None => 1.0,
        };
    }
    total / n as f64
}

/// **Lemma 4.3** left-hand side estimated over `samples` random cliques on
/// a restricted domain: `E_{C∼S_k} ‖f(U_D) − f(U_D^C)‖`.
pub fn lemma_4_3_sampled<R: Rng + ?Sized>(
    f: &TruthTable,
    domain: &[u64],
    k: usize,
    samples: usize,
    rng: &mut R,
) -> f64 {
    assert!(samples > 0, "need at least one sample");
    let n = f.arity();
    let base = f.mean_on_domain(domain).expect("domain must be non-empty");
    let total: f64 = (0..samples)
        .map(|_| {
            let c = sample_subset(rng, n as usize, k);
            let mask: u64 = c.iter().map(|&i| 1u64 << i).sum();
            let restricted: Vec<u64> = domain
                .iter()
                .copied()
                .filter(|&x| x & mask == mask)
                .collect();
            match f.mean_on_domain(&restricted) {
                Some(m) => (m - base).abs(),
                None => 1.0,
            }
        })
        .sum();
    total / samples as f64
}

/// A uniformly random domain `D ⊆ {0,1}^n` of size `2^{n−t}` (sampling
/// without replacement), sorted.
///
/// # Panics
///
/// Panics if `t ≥ n` or `n > 25`.
pub fn random_domain<R: Rng + ?Sized>(n: u32, t: u32, rng: &mut R) -> Vec<u64> {
    assert!(t < n, "domain would be a single point or empty");
    assert!(n <= 25, "domain too large to materialize");
    let size = 1usize << (n - t);
    let mut all: Vec<u64> = (0..(1u64 << n)).collect();
    // Partial Fisher-Yates: shuffle the first `size` slots.
    for i in 0..size {
        let j = rng.gen_range(i..all.len());
        all.swap(i, j);
    }
    let mut d = all[..size].to_vec();
    d.sort_unstable();
    d
}

/// A *transcript-like* domain: the set of `x` on which a chain of `t`
/// Boolean functions takes prescribed values — the shape `D_p^{(t)}`
/// actually takes during a protocol (Claim 2's object), as opposed to a
/// random subset.
pub fn transcript_domain(n: u32, chain: &[(TruthTable, bool)]) -> Vec<u64> {
    (0..(1u64 << n))
        .filter(|&x| chain.iter().all(|(f, b)| f.eval(x) == *b))
        .collect()
}

fn ones_cube(n: u32, set: &[usize]) -> Subcube64 {
    let mut cube = Subcube64::new(n);
    for &i in set {
        cube = cube.fixed(i as u32, true).expect("distinct coordinates");
    }
    cube
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lemma_1_10_dictator_value() {
        // Dictator on bit 0: only i = 0 contributes, with distance 1/2.
        let n = 9u32;
        let f = TruthTable::dictator(n, 0);
        let got = lemma_1_10_mean(&f);
        assert!((got - 0.5 / n as f64).abs() < 1e-12);
    }

    #[test]
    fn lemma_1_10_parity_is_zero() {
        // Fixing one bit of a full parity leaves the output uniform.
        let f = TruthTable::parity(10, (1 << 10) - 1);
        assert!(lemma_1_10_mean(&f) < 1e-12);
    }

    #[test]
    fn lemma_1_10_bound_holds_for_families() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [7u32, 11, 15] {
            for f in [
                TruthTable::majority(n),
                TruthTable::threshold(n, n / 2 + 2),
                TruthTable::and(n, 0b111),
                TruthTable::random(&mut rng, n),
            ] {
                let got = lemma_1_10_mean(&f);
                let bound = bounds::lemma_1_10(n as usize);
                assert!(got <= bound, "n={n}: {got} > {bound}");
            }
        }
    }

    #[test]
    fn majority_witnesses_theta_one_over_sqrt_n() {
        // Majority's value times sqrt(n) stays within a constant band —
        // the lemma is tight.
        for n in [9u32, 15, 21] {
            let f = TruthTable::majority(n);
            let scaled = lemma_1_10_mean(&f) * (n as f64).sqrt();
            assert!((0.3..1.2).contains(&scaled), "n={n}: scaled value {scaled}");
        }
    }

    #[test]
    fn lemma_1_8_linear_in_k() {
        let n = 13u32;
        let f = TruthTable::majority(n);
        let v1 = lemma_1_8_exact(&f, 1);
        let v3 = lemma_1_8_exact(&f, 3);
        // Grows with k, roughly linearly (within a factor 2 band).
        assert!(v3 > 1.9 * v1, "v1={v1}, v3={v3}");
        assert!(v3 < 4.5 * v1, "v1={v1}, v3={v3}");
        assert!(v3 <= bounds::lemma_1_8(n as usize, 3));
    }

    #[test]
    fn lemma_1_8_exact_vs_sampled() {
        let mut rng = StdRng::seed_from_u64(2);
        let f = TruthTable::majority(11);
        let exact = lemma_1_8_exact(&f, 2);
        let sampled = lemma_1_8_sampled(&f, 2, 4000, &mut rng);
        assert!((exact - sampled).abs() < 0.01, "{exact} vs {sampled}");
    }

    #[test]
    fn lemma_4_4_full_domain_reduces_to_1_10() {
        let f = TruthTable::majority(9);
        let full: Vec<u64> = (0..512).collect();
        assert!((lemma_4_4_mean(&f, &full) - lemma_1_10_mean(&f)).abs() < 1e-12);
    }

    #[test]
    fn lemma_4_4_bound_on_random_domains() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 14u32;
        for t in [1u32, 3, 5] {
            let domain = random_domain(n, t, &mut rng);
            for f in [TruthTable::majority(n), TruthTable::random(&mut rng, n)] {
                let got = lemma_4_4_mean(&f, &domain);
                let bound = bounds::lemma_4_4(n as usize, t as usize);
                assert!(got <= bound, "n={n}, t={t}: {got} > {bound}");
            }
        }
    }

    #[test]
    fn lemma_4_4_grows_with_restriction() {
        // Averaged over random domains, smaller D means (weakly) larger
        // deviation.
        let mut rng = StdRng::seed_from_u64(4);
        let n = 12u32;
        let f = TruthTable::majority(n);
        let avg_at = |t: u32, rng: &mut StdRng| -> f64 {
            (0..40)
                .map(|_| lemma_4_4_mean(&f, &random_domain(n, t, rng)))
                .sum::<f64>()
                / 40.0
        };
        let small_t = avg_at(1, &mut rng);
        let large_t = avg_at(7, &mut rng);
        assert!(
            large_t >= small_t - 0.005,
            "restriction should not shrink the deviation: {small_t} -> {large_t}"
        );
    }

    #[test]
    fn lemma_4_3_sampled_within_bound() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 14u32;
        let t = 3u32;
        let domain = random_domain(n, t, &mut rng);
        let f = TruthTable::majority(n);
        let got = lemma_4_3_sampled(&f, &domain, 2, 500, &mut rng);
        // Lemma 4.3: O(k sqrt(t/n)); generous constant 4.
        let bound = 4.0 * 2.0 * ((t as f64) / (n as f64)).sqrt();
        assert!(got <= bound, "{got} > {bound}");
    }

    #[test]
    fn transcript_domain_filters_by_chain() {
        let n = 6u32;
        let f0 = TruthTable::parity(n, 0b111);
        let f1 = TruthTable::dictator(n, 4);
        let d = transcript_domain(n, &[(f0.clone(), true), (f1.clone(), false)]);
        assert!(!d.is_empty());
        for &x in &d {
            assert!(f0.eval(x));
            assert!(!f1.eval(x));
        }
        // Roughly a quarter of the cube.
        assert!((d.len() as f64 - 16.0).abs() < 8.0);
    }

    #[test]
    fn random_domain_size_and_sortedness() {
        let mut rng = StdRng::seed_from_u64(6);
        let d = random_domain(10, 3, &mut rng);
        assert_eq!(d.len(), 128);
        assert!(d.windows(2).all(|w| w[0] < w[1]));
    }
}
