//! Canonical `BCAST(1)` protocols for the planted-clique lower-bound
//! experiments (Theorems 1.6 and 4.1).
//!
//! The theorems quantify over *all* protocols; the exact engine computes,
//! for any *fixed* protocol, the statistical distance between its
//! transcript distributions under `A_rand` and `A_k` — which is precisely
//! the advantage of the *optimal* post-processing of that protocol's
//! transcript. The protocols here are the natural clique-hunting
//! strategies one would actually try:
//!
//! * [`degree_threshold`] — broadcast whether your out-degree is
//!   suspiciously high (the detector that *works* once `k ≫ √n`);
//! * [`row_parity`] — broadcast a parity (maximally uninformative,
//!   a calibration control);
//! * [`suspect_intersection`] — adaptive: broadcast whether you are
//!   connected to every processor that has broadcast 1 so far (a greedy
//!   distributed clique probe);
//! * [`random_mask_parity`] — a seeded random linear protocol, the
//!   "generic" protocol for average-case behaviour.

use bcc_congest::{FnProtocol, TurnProtocol, TurnTranscript};
use bcc_core::exec::{DepthProfile, Estimator, ExactEstimator};

use crate::inputs::{clique_family, rand_input};

/// Broadcast 1 iff the row weight (out-degree) is at least `threshold`.
pub fn degree_threshold(n: u32, rounds: u32, threshold: u32) -> impl TurnProtocol {
    FnProtocol::new(n as usize, n, rounds * n, move |_, input, _| {
        input.count_ones() >= threshold
    })
}

/// Broadcast the parity of the row restricted to `mask` (refreshed per
/// round by rotating the mask with the turn index).
pub fn row_parity(n: u32, rounds: u32, mask: u64) -> impl TurnProtocol {
    FnProtocol::new(n as usize, n, rounds * n, move |_, input, tr| {
        let rotated = mask.rotate_left(tr.len() / n) & ((1u64 << n) - 1);
        (input & rotated).count_ones() % 2 == 1
    })
}

/// Adaptive greedy probe: broadcast 1 iff this processor has an out-edge
/// to *every* processor that broadcast 1 earlier in the current round.
///
/// On a planted instance, clique members reinforce each other; on a
/// random instance the set of 1-broadcasters thins out geometrically.
pub fn suspect_intersection(n: u32, rounds: u32) -> impl TurnProtocol {
    FnProtocol::new(n as usize, n, rounds * n, move |_, input, tr| {
        let t = tr.len();
        let round_start = t - (t % n);
        for s in round_start..t {
            let speaker = (s % n) as u64;
            if tr.bit(s) && (input >> speaker) & 1 == 0 {
                return false;
            }
        }
        true
    })
}

/// A seeded random linear protocol: each (processor, turn) pair gets a
/// fixed pseudorandom mask; broadcast the parity of the row under it.
pub fn random_mask_parity(n: u32, rounds: u32, seed: u64) -> impl TurnProtocol {
    FnProtocol::new(n as usize, n, rounds * n, move |proc, input, tr| {
        // SplitMix64 over (seed, proc, turn) — deterministic and cheap.
        let mut z = seed
            .wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(proc as u64 + 1))
            .wrapping_add(0xBF58476D1CE4E5B9u64.wrapping_mul(tr.len() as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        let mask = z & ((1u64 << n) - 1);
        (input & mask).count_ones() % 2 == 1
    })
}

/// Runs the full Theorem 1.6 / 4.1 experiment for one protocol through an
/// arbitrary [`Estimator`]: the mixture `A_k = avg_C A_C` against
/// `A_rand`.
///
/// The returned [`DepthProfile`] carries the real distance (the theorem's
/// left-hand side), the progress function, and — for exact estimators —
/// the consistent-set statistics of Claim 2.
///
/// # Panics
///
/// Panics if the instance is out of the estimator's reach (for the exact
/// walk: horizon > 26 turns or more than 5000 cliques).
pub fn experiment<P: TurnProtocol + Sync + ?Sized, E: Estimator>(
    protocol: &P,
    n: u32,
    k: usize,
    estimator: &E,
) -> DepthProfile {
    let members = clique_family(n, k);
    let baseline = rand_input(n);
    estimator.estimate_full(protocol, &members, &baseline)
}

/// [`experiment`] through the default exact estimator (the parallel exact
/// mixture walk).
///
/// # Panics
///
/// As [`experiment`].
pub fn exact_experiment<P: TurnProtocol + Sync + ?Sized>(
    protocol: &P,
    n: u32,
    k: usize,
) -> DepthProfile {
    experiment(protocol, n, k, &ExactEstimator::default())
}

/// A generic transcript test for sampled experiments: accept iff at least
/// `threshold` bits of the packed transcript are 1.
pub fn transcript_ones_acceptor(threshold: u32) -> impl Fn(u64) -> bool {
    move |transcript: u64| transcript.count_ones() >= threshold
}

/// Convenience: evaluates a protocol's bit exactly as the engine would —
/// used by tests to cross-check protocol definitions.
pub fn eval_bit<P: TurnProtocol + ?Sized>(
    protocol: &P,
    proc: usize,
    input: u64,
    transcript: &TurnTranscript,
) -> bool {
    protocol.bit(proc, input, transcript)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use bcc_congest::run_turn_protocol;

    #[test]
    fn degree_threshold_counts() {
        let p = degree_threshold(4, 1, 2);
        let t = TurnTranscript::empty();
        assert!(!eval_bit(&p, 0, 0b0010, &t));
        assert!(eval_bit(&p, 0, 0b0110, &t));
    }

    #[test]
    fn suspect_intersection_reacts_to_transcript() {
        let p = suspect_intersection(3, 1);
        let mut t = TurnTranscript::empty();
        // Processor 0 says 1.
        assert!(eval_bit(&p, 0, 0, &t)); // vacuous: nobody spoke yet
        t.push(true);
        // Processor 1 with no edge to 0 must say 0.
        assert!(!eval_bit(&p, 1, 0b000, &t));
        // With the edge, 1.
        assert!(eval_bit(&p, 1, 0b001, &t));
    }

    #[test]
    fn suspect_intersection_full_run_on_clique() {
        // All-ones rows: everyone keeps saying 1.
        let p = suspect_intersection(3, 2);
        let inputs = [0b110u64, 0b101, 0b011]; // complete digraph rows
        let tr = run_turn_protocol(&p, &inputs);
        assert_eq!(tr.as_u64(), 0b111111);
    }

    #[test]
    fn one_round_exact_experiment_obeys_theorem_1_6() {
        let (n, k) = (8u32, 2usize);
        let bound = bounds::theorem_1_6(n as usize, k);
        for cmp in [
            exact_experiment(&degree_threshold(n, 1, 5), n, k),
            exact_experiment(&suspect_intersection(n, 1), n, k),
            exact_experiment(&random_mask_parity(n, 1, 42), n, k),
        ] {
            assert!(
                cmp.tv() <= bound,
                "distance {} above k²/√n = {bound}",
                cmp.tv()
            );
            assert!(cmp.tv() <= cmp.progress() + 1e-12);
        }
    }

    #[test]
    fn parity_protocol_is_blind_to_cliques() {
        // A parity of a row with a planted all-ones sub-pattern is still a
        // fair coin as long as the mask touches free coordinates; distance
        // should be very small.
        let cmp = exact_experiment(&row_parity(7, 1, 0b1010101), 7, 2);
        assert!(cmp.tv() < 0.05, "parity distance {}", cmp.tv());
    }

    #[test]
    fn progress_function_dominates_real_distance_everywhere() {
        let n = 7u32;
        let cmp = exact_experiment(&suspect_intersection(n, 2), n, 2);
        for t in 0..cmp.mixture_tv_by_depth.len() {
            assert!(cmp.mixture_tv_by_depth[t] <= cmp.progress_by_depth[t] + 1e-12);
        }
    }

    #[test]
    fn two_rounds_accumulate_more_distance_than_one() {
        let n = 7u32;
        let one = exact_experiment(&suspect_intersection(n, 1), n, 2);
        let two = exact_experiment(&suspect_intersection(n, 2), n, 2);
        assert!(two.tv() >= one.tv() - 1e-12);
        assert!(
            two.tv() <= bounds::theorem_4_1(n as usize, 2, 2),
            "multi-round bound violated: {}",
            two.tv()
        );
    }
}
