//! The planted clique problem in the Broadcast Congested Clique — the
//! first main contribution of Chen & Grossman (PODC 2019).
//!
//! An input graph is either `A_rand` (uniform directed graph) or `A_k`
//! (uniform with a planted directed `k`-clique); processor `i` holds row
//! `i` of the adjacency matrix. The interesting regime is
//! `log n ≲ k ≲ √n` (§1.2).
//!
//! Lower-bound side (Theorems 1.6 and 4.1): no `n^{o(1)}`-round `BCAST(1)`
//! protocol distinguishes the two cases for `k = n^{1/4−ε}`:
//!
//! * [`inputs`] — plugs `A_rand` / `A_C` / the `A_k = avg_C A_C`
//!   decomposition into the exact engine of `bcc-core`;
//! * [`lemmas`] — the statistical inequalities (Lemmas 1.8, 1.10, 4.3,
//!   4.4) evaluated exactly on concrete function families;
//! * [`bounds`] — the closed-form bounds of Theorems 1.6 and 4.1, for the
//!   experiment tables' "paper" column.
//!
//! Upper-bound side:
//!
//! * [`find`] — the Appendix B algorithm: subsample at rate
//!   `p = log²n / k`, publish the active subgraph, take its maximum
//!   clique, and let every vertex claiming 9/10-connectivity join —
//!   `O(n/k · polylog n)` rounds, measured not asserted;
//! * [`degree`] — the high-degree heuristic that takes over once
//!   `k ≳ √n` (§1.2), completing the crossover picture.

#![forbid(unsafe_code)]

pub mod bounds;
pub mod decision;
pub mod degree;
pub mod find;
pub mod inputs;
pub mod lemmas;
pub mod protocols;
pub mod triangles;
pub mod undirected;

pub use find::{find_planted_clique, FindOutcome};
pub use inputs::{clique_family, clique_input, rand_input};
pub use protocols::exact_experiment;
