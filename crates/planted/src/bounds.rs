//! Closed-form bounds from the paper, for experiment tables' "paper"
//! columns.

/// Theorem 1.6: one-round transcript distance bound `O(k²/√n)` (the
/// constant is 1 here; experiments report the measured/bound ratio).
pub fn theorem_1_6(n: usize, k: usize) -> f64 {
    (k * k) as f64 / (n as f64).sqrt()
}

/// Theorem 4.1: `j`-round bound `O(j·k²·√((j + log n)/n))`.
pub fn theorem_4_1(n: usize, k: usize, j: usize) -> f64 {
    let n_f = n as f64;
    j as f64 * (k * k) as f64 * ((j as f64 + n_f.log2()) / n_f).sqrt()
}

/// Corollary 4.2, inverted: the smallest round count `j` at which
/// Theorem 4.1's bound stops ruling out advantage `eps` — i.e. the round
/// *lower bound* the theorem certifies for distinguishing with advantage
/// `eps` at clique size `k`.
///
/// Solves `j·k²·√((j + log n)/n) ≥ 2·eps` for the least integer `j` by
/// doubling + bisection. For `k = n^{1/4−ε}` this grows polynomially in
/// `n` — the paper's "no `n^{o(1)}`-round protocol" statement.
///
/// # Panics
///
/// Panics if `eps ≤ 0` or `k == 0`.
pub fn corollary_4_2_round_lower_bound(n: usize, k: usize, eps: f64) -> u64 {
    assert!(eps > 0.0, "advantage must be positive");
    assert!(k > 0, "clique size must be positive");
    let target = 2.0 * eps;
    let value = |j: u64| theorem_4_1(n, k, j as usize);
    if value(1) >= target {
        return 1;
    }
    let mut hi = 2u64;
    while value(hi) < target && hi < 1 << 62 {
        hi *= 2;
    }
    let mut lo = hi / 2;
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if value(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// Lemma 1.10: `E_i ‖f(U) − f(U^{[i]})‖ ≤ O(1/√n)`; the proof gives
/// constant ≤ 2 (from `2·sqrt(1/n)` after Pinsker + concavity).
pub fn lemma_1_10(n: usize) -> f64 {
    2.0 / (n as f64).sqrt()
}

/// Lemma 1.8: `E_C ‖f(U) − f(U^C)‖ ≤ O(k/√n)`.
pub fn lemma_1_8(n: usize, k: usize) -> f64 {
    2.0 * k as f64 / (n as f64).sqrt()
}

/// Lemma 4.4 (restricted domain, `|D| ≥ 2^{n−t}`):
/// `E_i ‖f(U_D) − f(U_D^{[i]})‖ ≤ O(√(t/n))`; the proof's explicit chain
/// gives `2t/n + 10·√((t+1)/n)`.
pub fn lemma_4_4(n: usize, t: usize) -> f64 {
    2.0 * t as f64 / n as f64 + 10.0 * ((t as f64 + 1.0) / n as f64).sqrt()
}

/// Theorem 5.1 (toy PRG, one round): `O(n/2^{k/2})`.
pub fn theorem_5_1(n: usize, k: u32) -> f64 {
    n as f64 / 2f64.powf(k as f64 / 2.0)
}

/// Theorems 5.3/5.4 (multi-round PRG): `O(jn/2^{k/9})`; the proofs carry
/// constant 2.
pub fn theorem_5_3(n: usize, k: u32, j: usize) -> f64 {
    2.0 * (j * n) as f64 / 2f64.powf(k as f64 / 9.0)
}

/// Theorem B.1's round count: `1 + E[N_active] + 1` with
/// `E[N_active] = n·p`, `p = log²n / k` — `O(n/k · log²n)` rounds.
pub fn theorem_b_1_rounds(n: usize, k: usize) -> f64 {
    let log_n = (n as f64).log2();
    2.0 + n as f64 * (log_n * log_n / k as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_round_bound_vanishes_for_small_k() {
        // k = n^{1/4 - eps}: the bound is n^{-2eps} -> 0 (Corollary 1.7's
        // regime) — decreasing in n at fixed exponent.
        let at = |n: usize| theorem_1_6(n, (n as f64).powf(0.20) as usize);
        assert!(at(1 << 20) < 0.3);
        assert!(at(1 << 28) < at(1 << 20));
        // k = n^{1/2}: the bound is vacuous (≥ 1) — consistent with the
        // degree algorithm working there.
        let n = 1usize << 20;
        let k_big = (n as f64).sqrt() as usize;
        assert!(theorem_1_6(n, k_big) >= 1.0);
    }

    #[test]
    fn multi_round_bound_scales_with_j() {
        let b1 = theorem_4_1(4096, 4, 1);
        let b2 = theorem_4_1(4096, 4, 2);
        assert!(b2 > b1 * 2.0, "j enters both linearly and inside the sqrt");
    }

    #[test]
    fn prg_bound_decays_exponentially() {
        assert!(theorem_5_3(64, 90, 2) < theorem_5_3(64, 45, 2) / 10.0);
    }

    #[test]
    fn appendix_b_round_count_decreases_in_k() {
        let n = 1024;
        assert!(theorem_b_1_rounds(n, 400) < theorem_b_1_rounds(n, 200));
        // And stays well below the trivial n rounds for k >> log² n.
        assert!(theorem_b_1_rounds(n, 400) < n as f64 / 2.0);
    }

    #[test]
    fn lemma_bounds_monotone() {
        assert!(lemma_1_8(400, 3) > lemma_1_10(400));
        assert!(lemma_4_4(400, 40) > lemma_4_4(400, 4));
    }

    #[test]
    fn corollary_4_2_certified_rounds_grow_polynomially() {
        // k = n^{1/4 - 0.1}: the certified round count must grow like a
        // fixed positive power of n (~ n^{2*0.1} up to the sqrt term).
        let rounds_at = |log2n: u32| {
            let n = 1usize << log2n;
            let k = ((n as f64).powf(0.15)) as usize;
            corollary_4_2_round_lower_bound(n, k.max(1), 0.25)
        };
        let r20 = rounds_at(20);
        let r30 = rounds_at(30);
        assert!(r20 > 1, "already multi-round at n = 2^20: {r20}");
        assert!(
            r30 as f64 >= 1.5 * r20 as f64,
            "polynomial growth expected: {r20} -> {r30}"
        );
    }

    #[test]
    fn corollary_4_2_at_the_bound_boundary() {
        // The returned j indeed crosses the target while j-1 does not.
        let (n, k, eps) = (1 << 24, 12usize, 0.25);
        let j = corollary_4_2_round_lower_bound(n, k, eps);
        assert!(theorem_4_1(n, k, j as usize) >= 2.0 * eps);
        if j > 1 {
            assert!(theorem_4_1(n, k, j as usize - 1) < 2.0 * eps);
        }
    }

    #[test]
    fn corollary_4_2_trivial_for_large_k() {
        // k = sqrt(n): the bound is vacuous from round one.
        let n = 1 << 20;
        let k = 1 << 10;
        assert_eq!(corollary_4_2_round_lower_bound(n, k, 0.25), 1);
    }
}
