//! The Appendix B algorithm: finding the planted clique in
//! `O(n/k · polylog n)` rounds of `BCAST(1)` (Theorem B.1).
//!
//! The protocol, verbatim from the paper:
//!
//! 1. each processor stays *active* with probability `p = log²n / k`
//!    (one round to announce);
//! 2. if more than `2np` processors are active, everyone terminates;
//! 3. each active processor broadcasts its adjacency to every other
//!    active processor (`N_active` rounds — all processors broadcast in
//!    parallel, one bit per round);
//! 4. everyone locally computes the largest clique `C_active` of the
//!    induced *mutual* subgraph; if `|C_active| < ½·log²n`, terminate;
//! 5. every processor connected (mutually) to at least 9/10 of
//!    `C_active` broadcasts a membership claim (one round).
//!
//! Every round is accounted through [`bcc_congest::Network`], so the
//! `O(n/k · log²n)` round count in the experiment tables is measured, not
//! derived.

use bcc_congest::{Model, Network};
use bcc_f2::BitVec;
use bcc_graphs::clique::max_clique;
use bcc_graphs::digraph::{DiGraph, UGraph};
use rand::Rng;

/// Why the protocol gave up, if it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Abort {
    /// Step 2: more than `2np` processors were active.
    TooManyActive,
    /// Step 4: the active clique was smaller than `½·log²n`.
    ActiveCliqueTooSmall,
}

/// The outcome of one protocol execution.
#[derive(Debug, Clone)]
pub struct FindOutcome {
    /// Vertices that claimed clique membership (empty on abort).
    pub claimed: Vec<usize>,
    /// The abort reason, if any.
    pub abort: Option<Abort>,
    /// Number of active processors.
    pub active_count: usize,
    /// Size of the maximum clique found among active processors.
    pub active_clique_size: usize,
    /// `BCAST(1)` rounds consumed.
    pub rounds_used: usize,
}

impl FindOutcome {
    /// Whether the claimed set is exactly `clique`.
    pub fn recovered(&self, clique: &[usize]) -> bool {
        self.claimed == clique
    }
}

/// The paper's activation probability `p = log₂²n / k`, clamped to 1.
pub fn activation_probability(n: usize, k: usize) -> f64 {
    let log_n = (n as f64).log2();
    (log_n * log_n / k as f64).min(1.0)
}

/// Runs the Appendix B protocol on `graph` with activation probability
/// `p`, in `BCAST(1)`.
///
/// # Panics
///
/// Panics if `p ∉ (0, 1]` or the graph has fewer than 2 vertices.
pub fn find_planted_clique<R: Rng + ?Sized>(graph: &DiGraph, p: f64, rng: &mut R) -> FindOutcome {
    let n = graph.n();
    assert!(n >= 2, "need at least two vertices");
    find_planted_clique_in(Model::bcast1(n), graph, p, rng)
}

/// Runs the Appendix B protocol under an arbitrary model width — the
/// `BCAST(1)` vs `BCAST(log n)` accounting ablation (footnote 2: the wide
/// model shrinks the adjacency-broadcast phase by the width factor).
///
/// # Panics
///
/// Panics if the model's processor count differs from the graph, if
/// `p ∉ (0, 1]`, or if the graph has fewer than 2 vertices.
pub fn find_planted_clique_in<R: Rng + ?Sized>(
    model: Model,
    graph: &DiGraph,
    p: f64,
    rng: &mut R,
) -> FindOutcome {
    assert!(
        p > 0.0 && p <= 1.0,
        "activation probability must be in (0,1]"
    );
    let n = graph.n();
    assert!(n >= 2, "need at least two vertices");
    assert_eq!(model.n(), n, "model size must match the graph");
    let mut net = Network::new(model);

    // Step 1: activity announcement.
    let active_bits: Vec<u64> = (0..n).map(|_| u64::from(rng.gen::<f64>() < p)).collect();
    let heard = net.broadcast_round(&active_bits).to_vec();
    let active: Vec<usize> = (0..n).filter(|&i| heard[i] == 1).collect();
    let n_active = active.len();

    // Step 2: abort on an oversized sample.
    if (n_active as f64) > 2.0 * n as f64 * p {
        return FindOutcome {
            claimed: Vec::new(),
            abort: Some(Abort::TooManyActive),
            active_count: n_active,
            active_clique_size: 0,
            rounds_used: net.rounds_used(),
        };
    }
    if n_active < 2 {
        return FindOutcome {
            claimed: Vec::new(),
            abort: Some(Abort::ActiveCliqueTooSmall),
            active_count: n_active,
            active_clique_size: n_active,
            rounds_used: net.rounds_used(),
        };
    }

    // Step 3: active processors publish their adjacency to the active set
    // (inactive processors pad with zeros — everyone broadcasts each
    // round in this model).
    let payloads: Vec<BitVec> = (0..n)
        .map(|i| {
            let mut v = BitVec::zeros(n_active);
            if heard[i] == 1 {
                for (slot, &j) in active.iter().enumerate() {
                    if i != j && graph.has_edge(i, j) {
                        v.set(slot, true);
                    }
                }
            }
            v
        })
        .collect();
    let rounds = net.broadcast_bits(&payloads);
    let published = net.collect_bits(rounds, n_active);

    // Step 4: everyone reconstructs the active mutual subgraph and takes
    // its maximum clique (unbounded local computation).
    let mut active_graph = UGraph::empty(n_active);
    for a in 0..n_active {
        for b in (a + 1)..n_active {
            let ab = published[active[a]].get(b);
            let ba = published[active[b]].get(a);
            if ab && ba {
                active_graph.set_edge(a, b, true);
            }
        }
    }
    let local_clique = max_clique(&active_graph);
    let active_clique: Vec<usize> = local_clique.iter().map(|&a| active[a]).collect();
    let log_n = (n as f64).log2();
    if (active_clique.len() as f64) < 0.5 * log_n * log_n {
        return FindOutcome {
            claimed: Vec::new(),
            abort: Some(Abort::ActiveCliqueTooSmall),
            active_count: n_active,
            active_clique_size: active_clique.len(),
            rounds_used: net.rounds_used(),
        };
    }

    // Step 5: membership claims. Processor i checks its own row: an
    // out-edge to at least 9/10 of C_active. (A planted clique forces both
    // directions, so clique members always pass; a non-member's out-edges
    // to C_active are fair coins and the 9/10 threshold fails them with
    // probability exp(-Ω(|C_active|)).)
    let claims: Vec<u64> = (0..n)
        .map(|i| {
            let connected = active_clique
                .iter()
                .filter(|&&j| i == j || graph.has_edge(i, j))
                .count();
            u64::from(10 * connected >= 9 * active_clique.len())
        })
        .collect();
    let heard_claims = net.broadcast_round(&claims).to_vec();
    let claimed: Vec<usize> = (0..n).filter(|&i| heard_claims[i] == 1).collect();

    FindOutcome {
        claimed,
        abort: None,
        active_count: n_active,
        active_clique_size: active_clique.len(),
        rounds_used: net.rounds_used(),
    }
}

/// Success statistics of the protocol over repeated planted instances.
#[derive(Debug, Clone, Copy)]
pub struct FindStats {
    /// Fraction of runs recovering the planted clique exactly.
    pub success_rate: f64,
    /// Mean rounds per run.
    pub mean_rounds: f64,
    /// Mean active-set size.
    pub mean_active: f64,
    /// Fraction of runs aborted.
    pub abort_rate: f64,
}

/// Runs the protocol on `trials` fresh `A_k` instances.
pub fn measure_find<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    p: f64,
    trials: usize,
    rng: &mut R,
) -> FindStats {
    assert!(trials > 0, "need at least one trial");
    let mut success = 0usize;
    let mut aborts = 0usize;
    let mut rounds = 0usize;
    let mut active = 0usize;
    for _ in 0..trials {
        let inst = bcc_graphs::planted::sample_planted(rng, n, k);
        let out = find_planted_clique(&inst.graph, p, rng);
        if out.recovered(&inst.clique) {
            success += 1;
        }
        if out.abort.is_some() {
            aborts += 1;
        }
        rounds += out.rounds_used;
        active += out.active_count;
    }
    FindStats {
        success_rate: success as f64 / trials as f64,
        mean_rounds: rounds as f64 / trials as f64,
        mean_active: active as f64 / trials as f64,
        abort_rate: aborts as f64 / trials as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graphs::planted::{sample_planted, sample_rand};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_large_planted_clique() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 256;
        let k = 110; // comfortably above log²n = 64
        let p = activation_probability(n, k);
        let mut successes = 0;
        let trials = 5;
        for _ in 0..trials {
            let inst = sample_planted(&mut rng, n, k);
            let out = find_planted_clique(&inst.graph, p, &mut rng);
            if out.recovered(&inst.clique) {
                successes += 1;
            }
        }
        assert!(successes >= 4, "only {successes}/{trials} recovered");
    }

    #[test]
    fn round_count_is_active_plus_two() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 256;
        let k = 110;
        let inst = sample_planted(&mut rng, n, k);
        let out = find_planted_clique(&inst.graph, activation_probability(n, k), &mut rng);
        if out.abort.is_none() {
            assert_eq!(out.rounds_used, out.active_count + 2);
        }
    }

    #[test]
    fn round_count_well_below_trivial() {
        // Trivial: broadcast everything = n rounds. Appendix B: ~ np + 2.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 512;
        let k = 256;
        let p = activation_probability(n, k); // 81/256 ≈ 0.32
        let inst = sample_planted(&mut rng, n, k);
        let out = find_planted_clique(&inst.graph, p, &mut rng);
        assert!(
            out.rounds_used < n / 2,
            "rounds {} not sublinear",
            out.rounds_used
        );
    }

    #[test]
    fn random_graph_rarely_claims_a_clique() {
        // Soundness: on A_rand the active clique is Θ(log n) ≪ ½log²n, so
        // the protocol aborts.
        let mut rng = StdRng::seed_from_u64(4);
        let n = 256;
        let g = sample_rand(&mut rng, n);
        let out = find_planted_clique(&g, activation_probability(n, 110), &mut rng);
        assert_eq!(out.abort, Some(Abort::ActiveCliqueTooSmall));
        assert!(out.claimed.is_empty());
    }

    #[test]
    fn oversized_active_set_aborts() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = sample_rand(&mut rng, 64);
        // Force p tiny so that E[active] ≈ 0.64 and any lucky streak of
        // actives above 2np = 1.28 aborts; try until we see the abort.
        let mut seen_abort = false;
        for _ in 0..200 {
            let out = find_planted_clique(&g, 0.01, &mut rng);
            if out.abort == Some(Abort::TooManyActive) {
                seen_abort = true;
                break;
            }
        }
        assert!(seen_abort, "never hit the too-many-active guard");
    }

    #[test]
    fn bcast_log_shrinks_rounds_by_the_width_factor() {
        // Ablation (a) of DESIGN.md: the adjacency phase dominates, so
        // BCAST(log n) cuts rounds by ~ the message width.
        let mut rng = StdRng::seed_from_u64(7);
        let n = 256;
        let k = 110;
        let p = activation_probability(n, k);
        let inst = sample_planted(&mut rng, n, k);
        let narrow = find_planted_clique(&inst.graph, p, &mut rng);
        let wide = super::find_planted_clique_in(
            bcc_congest::Model::bcast_log(n),
            &inst.graph,
            p,
            &mut rng,
        );
        if narrow.abort.is_none() && wide.abort.is_none() {
            let width = bcc_congest::Model::bcast_log(n).width_bits() as usize;
            assert!(
                wide.rounds_used <= narrow.rounds_used / width * 2 + 4,
                "wide {} vs narrow {} (width {width})",
                wide.rounds_used,
                narrow.rounds_used
            );
            assert!(wide.recovered(&inst.clique));
        }
    }

    #[test]
    fn measure_find_reports_consistent_stats() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 256;
        let k = 110;
        let stats = measure_find(n, k, activation_probability(n, k), 6, &mut rng);
        assert!(stats.success_rate >= 0.5, "success {}", stats.success_rate);
        assert!(stats.mean_active > 0.0);
        assert!(stats.mean_rounds > 2.0);
    }
}
