//! The *decision* version of the planted clique problem (§1.2: "the goal
//! is to determine whether a clique exists").
//!
//! A decision protocol is a turn protocol plus an accept/reject rule on
//! the final transcript. The paper measures quality as *advantage*
//! (footnote 5): guessing the source of a sample drawn from either
//! distribution with probability `½ + ε`.
//!
//! Two facts this module makes executable:
//!
//! * For any transcript rule, `advantage = |accept_rate₁ − accept_rate₂|/2`
//!   and is at most `TV/2`... more precisely the *optimal* rule's
//!   advantage is exactly `TV(P₁, P₂)/2` — [`optimal_advantage`] computes
//!   it from the exact engine and [`rule_advantage`] measures any given
//!   rule against it.
//! * Corollary 1.7: with `k = o(n^{1/4})` every one-round protocol's
//!   optimal advantage is `o(1)`.

use bcc_congest::{run_turn_protocol, TurnProtocol};
use bcc_core::exec::{Estimator, ExactEstimator};
use rand::Rng;

use crate::inputs::{clique_family, rand_input};

/// A decision rule: accept/reject on a packed final transcript.
pub trait DecisionRule {
    /// Whether to output "planted" on this transcript.
    fn accept(&self, transcript: u64) -> bool;
}

impl<F: Fn(u64) -> bool> DecisionRule for F {
    fn accept(&self, transcript: u64) -> bool {
        self(transcript)
    }
}

/// The advantage of the *optimal* transcript rule for a protocol on
/// `A_rand` vs `A_k`, computed exactly: `TV(P_rand, P_k) / 2`.
///
/// This is the strongest possible decision quality for the given
/// communication pattern — Theorem 1.6 bounds it by `k²/(2√n)`.
pub fn optimal_advantage<P: TurnProtocol + Sync + ?Sized>(protocol: &P, n: u32, k: usize) -> f64 {
    optimal_advantage_with(protocol, n, k, &ExactEstimator::default())
}

/// [`optimal_advantage`] through an arbitrary [`Estimator`] — the sampled
/// backend reaches instances beyond the exact walk (its result is then an
/// estimate with the estimator's noise floor).
pub fn optimal_advantage_with<P, E>(protocol: &P, n: u32, k: usize, estimator: &E) -> f64
where
    P: TurnProtocol + Sync + ?Sized,
    E: Estimator,
{
    let members = clique_family(n, k);
    let baseline = rand_input(n);
    estimator.estimate_full(protocol, &members, &baseline).tv() / 2.0
}

/// Measured acceptance rates of a concrete rule under both distributions.
#[derive(Debug, Clone, Copy)]
pub struct RulePerformance {
    /// Acceptance rate on `A_k` (planted).
    pub accept_planted: f64,
    /// Acceptance rate on `A_rand`.
    pub accept_rand: f64,
    /// The advantage `|accept_planted − accept_rand| / 2`.
    pub advantage: f64,
}

/// Measures a decision rule by sampling both distributions `trials` times
/// each (sampling `A_k` by first sampling the clique — the mixture).
pub fn rule_advantage<P, D, R>(
    protocol: &P,
    rule: &D,
    n: u32,
    k: usize,
    trials: usize,
    rng: &mut R,
) -> RulePerformance
where
    P: TurnProtocol + ?Sized,
    D: DecisionRule + ?Sized,
    R: Rng + ?Sized,
{
    assert!(trials > 0, "need at least one trial");
    let baseline = rand_input(n);
    let mut acc_p = 0usize;
    let mut acc_r = 0usize;
    for _ in 0..trials {
        let c = bcc_graphs::planted::sample_subset(rng, n as usize, k);
        let planted_input = crate::inputs::clique_input(n, &c);
        let x = planted_input.sample(rng);
        if rule.accept(run_turn_protocol(protocol, &x).as_u64()) {
            acc_p += 1;
        }
        let y = baseline.sample(rng);
        if rule.accept(run_turn_protocol(protocol, &y).as_u64()) {
            acc_r += 1;
        }
    }
    let accept_planted = acc_p as f64 / trials as f64;
    let accept_rand = acc_r as f64 / trials as f64;
    RulePerformance {
        accept_planted,
        accept_rand,
        advantage: (accept_planted - accept_rand).abs() / 2.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use crate::protocols::{degree_threshold, suspect_intersection, transcript_ones_acceptor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn optimal_advantage_obeys_corollary_1_7() {
        let (n, k) = (8u32, 2usize);
        let adv = optimal_advantage(&suspect_intersection(n, 1), n, k);
        assert!(adv <= bounds::theorem_1_6(n as usize, k) / 2.0);
    }

    #[test]
    fn concrete_rules_never_beat_the_optimal() {
        let (n, k) = (7u32, 2usize);
        let proto = degree_threshold(n, 1, 4);
        let optimal = optimal_advantage(&proto, n, k);
        let mut rng = StdRng::seed_from_u64(1);
        for thresh in [2u32, 3, 4, 5] {
            let rule = transcript_ones_acceptor(thresh);
            let perf = rule_advantage(&proto, &rule, n, k, 30_000, &mut rng);
            // Allow 3-sigma sampling noise (~0.006 at 30k trials).
            assert!(
                perf.advantage <= optimal + 0.01,
                "rule(>{thresh}) advantage {} beats optimal {optimal}",
                perf.advantage
            );
        }
    }

    #[test]
    fn some_rule_approaches_the_optimal() {
        // For a 1-round degree protocol the best threshold rule should
        // capture a decent share of the optimal advantage.
        let (n, k) = (7u32, 3usize);
        let proto = degree_threshold(n, 1, 4);
        let optimal = optimal_advantage(&proto, n, k);
        let mut rng = StdRng::seed_from_u64(2);
        let best = (1..=6u32)
            .map(|t| {
                rule_advantage(&proto, &transcript_ones_acceptor(t), n, k, 20_000, &mut rng)
                    .advantage
            })
            .fold(0.0f64, f64::max);
        assert!(
            best >= optimal * 0.5,
            "best rule {best} far below optimal {optimal}"
        );
    }

    #[test]
    fn constant_rules_have_zero_advantage() {
        let (n, k) = (6u32, 2usize);
        let proto = suspect_intersection(n, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let always = rule_advantage(&proto, &|_: u64| true, n, k, 5000, &mut rng);
        assert_eq!(always.advantage, 0.0);
        assert_eq!(always.accept_planted, 1.0);
    }
}
